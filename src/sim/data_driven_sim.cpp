#include "sim/data_driven_sim.hpp"

#include <algorithm>
#include <array>
#include <queue>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "trace/trace.hpp"

namespace jsweep::sim {

namespace {

/// Representative direction of an octant (its diagonal).
mesh::Vec3 octant_dir(int oct) {
  const double s = 1.0 / std::sqrt(3.0);
  return {(oct & 1) ? -s : s, (oct & 2) ? -s : s, (oct & 4) ? -s : s};
}

}  // namespace

struct DataDrivenSim::Prepared {
  std::int32_t num_patches = 0;
  int num_angles = 0;
  int num_groups = 1;
  std::int64_t num_programs = 0;
  std::int64_t group_span = 0;  ///< upwind slots per group (angle_base[A])

  std::vector<std::int32_t> proc_of;   ///< per patch
  std::vector<std::int32_t> nchunks;   ///< per patch (capped)
  std::vector<std::int64_t> chunk_cells_last;  ///< cells in final chunk
  std::vector<double> fold;  ///< true executions per simulated chunk
  int grain_eff = 0;         ///< grain used for curve extraction

  std::array<TransferCurves, 8> curves;
  std::array<std::vector<double>, 8> patch_prio;

  /// Upwind-slot bookkeeping: per (octant, patch) prefix offsets into the
  /// per-angle avail array; angle_base[a] shifts by whole octant blocks.
  std::array<std::vector<std::int64_t>, 8> up_prefix;  ///< size P+1 each
  std::vector<std::int64_t> angle_base;                ///< size A+1

  /// Lag model: slots (parallel to the avail array) whose dependence is
  /// cut — they never gate readiness. Empty when lagged_fraction == 0.
  std::vector<char> lagged;
  std::int64_t num_lagged = 0;

  [[nodiscard]] bool slot_lagged(std::int64_t slot) const {
    return !lagged.empty() && lagged[static_cast<std::size_t>(slot)] != 0;
  }

  [[nodiscard]] std::int64_t prog_id(int g, int a, std::int32_t p) const {
    return (static_cast<std::int64_t>(g) * num_angles + a) * num_patches + p;
  }
  [[nodiscard]] std::int32_t patch_of(std::int64_t prog) const {
    return static_cast<std::int32_t>(prog % num_patches);
  }
  [[nodiscard]] int angle_of(std::int64_t prog) const {
    return static_cast<int>((prog / num_patches) % num_angles);
  }
  [[nodiscard]] int group_of(std::int64_t prog) const {
    return static_cast<int>(prog / (static_cast<std::int64_t>(num_patches) *
                                    num_angles));
  }
  /// Index into the (group-replicated) avail array. The lag-model flags
  /// stay per (angle, patch, slot) — a direction's cut is the same for
  /// every group — so lag lookups use the group-0 base.
  [[nodiscard]] std::int64_t avail_base(int g, int a, std::int32_t p,
                                        int oct) const {
    return static_cast<std::int64_t>(g) * group_span +
           angle_base[static_cast<std::size_t>(a)] +
           up_prefix[static_cast<std::size_t>(oct)]
                    [static_cast<std::size_t>(p)];
  }
};

DataDrivenSim::DataDrivenSim(const PatchTopology& topo,
                             const sn::Quadrature& quad, SimConfig config)
    : topo_(topo), quad_(quad), config_(config) {
  JSWEEP_CHECK(config_.processes >= 1 && config_.workers_per_process >= 1);
  JSWEEP_CHECK(config_.cluster_grain >= 1);
  JSWEEP_CHECK(config_.groups >= 1);
}

SimResult DataDrivenSim::run() {
  Prepared prep;
  prep.num_patches = topo_.num_patches();
  prep.num_angles = quad_.num_angles();
  prep.num_groups = config_.groups;
  prep.num_programs = static_cast<std::int64_t>(prep.num_groups) *
                      prep.num_angles * prep.num_patches;
  prep.proc_of = assign_processes(topo_, config_.processes);

  prep.nchunks.resize(static_cast<std::size_t>(prep.num_patches));
  prep.chunk_cells_last.resize(static_cast<std::size_t>(prep.num_patches));
  prep.fold.resize(static_cast<std::size_t>(prep.num_patches));
  std::int64_t max_cells = 1;
  for (std::int32_t p = 0; p < prep.num_patches; ++p) {
    const std::int64_t cells = topo_.cells(p);
    max_cells = std::max(max_cells, cells);
    const auto true_chunks = std::max<std::int64_t>(
        1, (cells + config_.cluster_grain - 1) / config_.cluster_grain);
    const auto n = static_cast<std::int32_t>(
        std::min<std::int64_t>(true_chunks, config_.max_chunks_per_program));
    prep.nchunks[static_cast<std::size_t>(p)] = n;
    prep.fold[static_cast<std::size_t>(p)] =
        static_cast<double>(true_chunks) / n;
    const std::int64_t grain_sim = (cells + n - 1) / n;
    prep.chunk_cells_last[static_cast<std::size_t>(p)] =
        cells - grain_sim * (n - 1);
  }
  // Effective grain for curve extraction: the representative patch should
  // produce roughly max_chunks curves when the cap binds.
  prep.grain_eff = std::max<int>(
      config_.cluster_grain,
      static_cast<int>((max_cells + config_.max_chunks_per_program - 1) /
                       config_.max_chunks_per_program));

  // Transfer curves and patch priorities per octant.
  for (int oct = 0; oct < 8; ++oct) {
    const mesh::Vec3 dir = octant_dir(oct);
    prep.curves[static_cast<std::size_t>(oct)] =
        config_.tet_mesh
            ? extract_curves_tet(config_.rep_block_hexes, dir,
                                 config_.vertex_priority, prep.grain_eff)
            : extract_curves_structured(config_.rep_patch_dims, dir,
                                        config_.vertex_priority,
                                        prep.grain_eff);
    // Patch-level digraph for this octant.
    std::vector<std::pair<std::int32_t, std::int32_t>> edges;
    for (std::int32_t p = 0; p < prep.num_patches; ++p)
      topo_.for_downwind(p, dir, [&](const PatchNeighbor& nb) {
        edges.emplace_back(p, nb.patch);
      });
    const graph::Digraph pg(prep.num_patches, edges);
    prep.patch_prio[static_cast<std::size_t>(oct)] =
        graph::patch_priorities(config_.patch_priority, pg);
  }

  // Upwind slot prefixes.
  for (int oct = 0; oct < 8; ++oct) {
    auto& prefix = prep.up_prefix[static_cast<std::size_t>(oct)];
    prefix.assign(static_cast<std::size_t>(prep.num_patches) + 1, 0);
    const mesh::Vec3 dir = octant_dir(oct);
    for (std::int32_t p = 0; p < prep.num_patches; ++p) {
      std::int64_t count = 0;
      topo_.for_upwind(p, dir, [&](const PatchNeighbor&) { ++count; });
      prefix[static_cast<std::size_t>(p) + 1] =
          prefix[static_cast<std::size_t>(p)] + count;
    }
  }
  prep.angle_base.assign(static_cast<std::size_t>(prep.num_angles) + 1, 0);
  for (int a = 0; a < prep.num_angles; ++a) {
    const int oct = quad_.angle(a).octant;
    prep.angle_base[static_cast<std::size_t>(a) + 1] =
        prep.angle_base[static_cast<std::size_t>(a)] +
        prep.up_prefix[static_cast<std::size_t>(oct)]
                      [static_cast<std::size_t>(prep.num_patches)];
  }
  prep.group_span =
      prep.angle_base[static_cast<std::size_t>(prep.num_angles)];

  // Lag model: deterministically mark cut dependence slots.
  if (config_.lagged_fraction > 0.0) {
    JSWEEP_CHECK(config_.lagged_fraction <= 1.0);
    Rng rng(config_.lag_seed);
    prep.lagged.assign(
        static_cast<std::size_t>(
            prep.angle_base[static_cast<std::size_t>(prep.num_angles)]),
        0);
    for (auto& flag : prep.lagged)
      if (rng.chance(config_.lagged_fraction)) {
        flag = 1;
        ++prep.num_lagged;
      }
  }

  return config_.engine == SimEngine::DataDriven ? run_data_driven(prep)
                                                 : run_bsp(prep);
}

// ---------------------------------------------------------------------------
// Data-driven event simulation
// ---------------------------------------------------------------------------

namespace {

struct Event {
  double t;
  std::uint64_t seq;
  enum Kind : int { kChunkDone, kDepArrive, kGroupOpen } kind;
  std::int64_t prog;
  std::int32_t a1;  ///< ChunkDone: chunk index; DepArrive: upwind patch
  std::int32_t a2;  ///< DepArrive: upwind completed chunk
  std::int32_t worker = 0;  ///< ChunkDone: worker running the chunk

  bool operator>(const Event& o) const {
    if (t != o.t) return t > o.t;
    return seq > o.seq;
  }
};

struct ReadyEntry {
  double priority;
  std::uint64_t seq;
  std::int64_t prog;
  bool operator<(const ReadyEntry& o) const {
    if (priority != o.priority) return priority < o.priority;
    return seq > o.seq;
  }
};

}  // namespace

SimResult DataDrivenSim::run_data_driven(const Prepared& prep) {
  const CostModel& cm = config_.cost;
  const double graphop_ns =
      config_.coarsened ? cm.t_graphop_coarse_ns : cm.t_graphop_ns;

  SimResult result;
  result.cores = config_.processes * config_.cores_per_process();
  result.lagged_slots = prep.num_lagged;

  // Per-program state.
  std::vector<std::int32_t> next_chunk(
      static_cast<std::size_t>(prep.num_programs), 0);
  std::vector<std::uint8_t> queued(
      static_cast<std::size_t>(prep.num_programs), 0);
  std::vector<std::int32_t> avail(
      static_cast<std::size_t>(prep.num_groups * prep.group_span), -1);

  // Group gates: (patch, group) program counts for pipelined injection,
  // per-group totals for the barriered baseline.
  std::vector<std::int32_t> patch_left(
      static_cast<std::size_t>(prep.num_patches) *
          static_cast<std::size_t>(prep.num_groups),
      prep.num_angles);
  std::vector<std::int64_t> group_left(
      static_cast<std::size_t>(prep.num_groups),
      static_cast<std::int64_t>(prep.num_angles) * prep.num_patches);

  // Per-process state. Free workers are an id stack (not a counter) so the
  // simulator knows which worker runs each chunk — per-worker trace tracks
  // need the identity; pop/push keeps the counts, and therefore the
  // schedule, identical to a plain counter.
  std::vector<std::vector<std::int32_t>> free_workers(
      static_cast<std::size_t>(config_.processes));
  for (auto& ids : free_workers)
    for (std::int32_t w = config_.workers_per_process - 1; w >= 0; --w)
      ids.push_back(w);
  std::vector<std::priority_queue<ReadyEntry>> ready(
      static_cast<std::size_t>(config_.processes));
  std::vector<double> master_free(
      static_cast<std::size_t>(config_.processes), 0.0);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t seq = 0;

  const auto angle_of = [&](std::int64_t prog) { return prep.angle_of(prog); };
  const auto patch_of = [&](std::int64_t prog) { return prep.patch_of(prog); };
  const auto group_of = [&](std::int64_t prog) { return prep.group_of(prog); };

  // Virtual-time trace emission (track pointers cached per proc/worker).
  trace::Recorder* const rec = config_.recorder;
  std::vector<trace::Track*> trace_workers;
  std::vector<trace::Track*> trace_masters;
  if (rec != nullptr) {
    trace_workers.assign(static_cast<std::size_t>(config_.processes) *
                             static_cast<std::size_t>(
                                 config_.workers_per_process),
                         nullptr);
    trace_masters.assign(static_cast<std::size_t>(config_.processes),
                         nullptr);
  }
  const auto wtrack = [&](std::size_t proc,
                          std::int32_t worker) -> trace::Track& {
    trace::Track*& t =
        trace_workers[proc * static_cast<std::size_t>(
                                 config_.workers_per_process) +
                      static_cast<std::size_t>(worker)];
    if (t == nullptr)
      t = &rec->track(static_cast<std::int32_t>(proc), worker);
    return *t;
  };
  const auto mtrack = [&](std::size_t proc) -> trace::Track& {
    trace::Track*& t = trace_masters[proc];
    if (t == nullptr)
      t = &rec->track(static_cast<std::int32_t>(proc), trace::kMasterTrack);
    return *t;
  };
  const auto key_of = [&](std::int64_t prog) {
    return ProgramKey{PatchId{patch_of(prog)},
                      TaskTag{group_of(prog) * prep.num_angles +
                              angle_of(prog)}};
  };
  const auto vns = [](double t) { return static_cast<std::int64_t>(t); };
  const auto priority_of = [&](std::int64_t prog) {
    const int a = angle_of(prog);
    const int oct = quad_.angle(a).octant;
    // Group-major task priority, matching the real solver: earlier groups
    // dominate (they unblock downstream sources), then earlier angles.
    return graph::combined_priority(
        -static_cast<double>(group_of(prog) * prep.num_angles + a),
        prep.patch_prio[static_cast<std::size_t>(oct)]
                       [static_cast<std::size_t>(patch_of(prog))]);
  };

  /// Deps of the pending chunk satisfied?
  const auto deps_ready = [&](std::int64_t prog) {
    const int g = group_of(prog);
    const std::int32_t p = patch_of(prog);
    if (g > 0) {  // group gate: previous group's sources must exist
      if (config_.group_pipelining) {
        if (patch_left[static_cast<std::size_t>(p) * prep.num_groups +
                       static_cast<std::size_t>(g - 1)] > 0)
          return false;
      } else {
        if (group_left[static_cast<std::size_t>(g - 1)] > 0) return false;
      }
    }
    const int a = angle_of(prog);
    const int oct = quad_.angle(a).octant;
    const auto& curves = prep.curves[static_cast<std::size_t>(oct)];
    const std::int32_t c = next_chunk[static_cast<std::size_t>(prog)];
    const std::int64_t base = prep.avail_base(g, a, p, oct);
    const std::int64_t lag_base = prep.avail_base(0, a, p, oct);
    std::int64_t slot = 0;
    bool ok = true;
    topo_.for_upwind(p, quad_.angle(a).dir, [&](const PatchNeighbor& nb) {
      if (ok && !prep.slot_lagged(lag_base + slot)) {
        const int req = curves.required_upwind_chunk(
            c, prep.nchunks[static_cast<std::size_t>(p)],
            prep.nchunks[static_cast<std::size_t>(nb.patch)]);
        if (avail[static_cast<std::size_t>(base + slot)] < req) ok = false;
      }
      ++slot;
    });
    return ok;
  };

  const auto chunk_cells = [&](std::int32_t p, std::int32_t c) {
    const auto n = prep.nchunks[static_cast<std::size_t>(p)];
    if (c + 1 == n) return prep.chunk_cells_last[static_cast<std::size_t>(p)];
    return (topo_.cells(p) + n - 1) / n;
  };

  const auto start_chunk = [&](std::int64_t prog, double t,
                               std::int32_t worker) {
    const std::int32_t p = patch_of(prog);
    const std::int32_t c = next_chunk[static_cast<std::size_t>(prog)];
    const auto cells = static_cast<double>(chunk_cells(p, c));
    const double fold = prep.fold[static_cast<std::size_t>(p)];
    const double dur = cells * (cm.t_vertex_ns + graphop_ns) +
                       fold * cm.t_exec_overhead_ns;
    result.breakdown.kernel += cells * cm.t_vertex_ns;
    result.breakdown.graphop += cells * graphop_ns +
                                fold * cm.t_exec_overhead_ns;
    result.chunk_executions += static_cast<std::int64_t>(fold);
    events.push(Event{t + dur, seq++, Event::kChunkDone, prog, c, 0, worker});
    if (rec != nullptr) {
      auto e = trace::make_span(trace::EventKind::Exec, vns(t), vns(t + dur));
      e.src = key_of(prog);
      e.bytes = static_cast<std::int64_t>(cells);
      wtrack(static_cast<std::size_t>(
                 prep.proc_of[static_cast<std::size_t>(p)]),
             worker)
          .record(e);
    }
  };

  /// Enqueue the program's pending chunk if it exists, is unqueued and
  /// dep-ready; start immediately when a worker is free.
  const auto try_activate = [&](std::int64_t prog, double t) {
    if (queued[static_cast<std::size_t>(prog)]) return;
    const std::int32_t p = patch_of(prog);
    if (next_chunk[static_cast<std::size_t>(prog)] >=
        prep.nchunks[static_cast<std::size_t>(p)])
      return;
    if (!deps_ready(prog)) return;
    queued[static_cast<std::size_t>(prog)] = 1;
    const auto proc = static_cast<std::size_t>(
        prep.proc_of[static_cast<std::size_t>(p)]);
    if (!free_workers[proc].empty()) {
      const std::int32_t worker = free_workers[proc].back();
      free_workers[proc].pop_back();
      start_chunk(prog, t, worker);
    } else {
      ready[proc].push(ReadyEntry{priority_of(prog), seq++, prog});
    }
  };

  // Seed: every program's first chunk that has no unmet dependencies.
  for (std::int64_t prog = 0; prog < prep.num_programs; ++prog)
    try_activate(prog, 0.0);

  double now = 0.0;
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    now = ev.t;

    if (ev.kind == Event::kGroupOpen) {
      try_activate(ev.prog, now);
      continue;
    }

    if (ev.kind == Event::kDepArrive) {
      // Update the avail slot for (prog ← upwind patch a1) to chunk a2.
      const int a = angle_of(ev.prog);
      const std::int32_t p = patch_of(ev.prog);
      const int oct = quad_.angle(a).octant;
      const std::int64_t base = prep.avail_base(group_of(ev.prog), a, p, oct);
      std::int64_t slot = 0;
      topo_.for_upwind(p, quad_.angle(a).dir, [&](const PatchNeighbor& nb) {
        if (nb.patch == ev.a1) {
          auto& slot_avail = avail[static_cast<std::size_t>(base + slot)];
          slot_avail = std::max(slot_avail, ev.a2);
        }
        ++slot;
      });
      try_activate(ev.prog, now);
      continue;
    }

    // ChunkDone.
    const std::int64_t prog = ev.prog;
    const std::int32_t c = ev.a1;
    const int a = angle_of(prog);
    const int g = group_of(prog);
    const std::int32_t p = patch_of(prog);
    const int oct = quad_.angle(a).octant;
    const auto proc = static_cast<std::size_t>(
        prep.proc_of[static_cast<std::size_t>(p)]);
    const auto& curves = prep.curves[static_cast<std::size_t>(oct)];

    next_chunk[static_cast<std::size_t>(prog)] = c + 1;
    queued[static_cast<std::size_t>(prog)] = 0;

    // Program finished? Advance the group gates, possibly injecting the
    // next group (per patch when pipelining, globally — after one
    // collective — when barriered).
    if (c + 1 == prep.nchunks[static_cast<std::size_t>(p)]) {
      auto& pl = patch_left[static_cast<std::size_t>(p) * prep.num_groups +
                            static_cast<std::size_t>(g)];
      --pl;
      auto& gl = group_left[static_cast<std::size_t>(g)];
      --gl;
      if (g + 1 < prep.num_groups) {
        if (config_.group_pipelining) {
          if (pl == 0)
            for (int na = 0; na < prep.num_angles; ++na)
              events.push(Event{now, seq++, Event::kGroupOpen,
                                prep.prog_id(g + 1, na, p), 0, 0});
        } else if (gl == 0) {
          const double t = now + cm.collective_ns(config_.processes);
          for (int na = 0; na < prep.num_angles; ++na)
            for (std::int32_t np = 0; np < prep.num_patches; ++np)
              events.push(Event{t, seq++, Event::kGroupOpen,
                                prep.prog_id(g + 1, na, np), 0, 0});
        }
      }
    }

    // Emissions to downwind neighbors. Remote streams headed to the same
    // destination process share one wire message, exactly like the real
    // engine's flush_remote() batching.
    const double frac_now =
        curves.emission_at(c, prep.nchunks[static_cast<std::size_t>(p)]);
    const double frac_prev =
        curves.emission_at(c - 1, prep.nchunks[static_cast<std::size_t>(p)]);
    const double delta = frac_now - frac_prev;
    struct RemoteBatch {
      std::size_t dproc;
      double bytes = 0.0;
      std::array<std::int64_t, 8> dprogs{};
      int count = 0;
    };
    std::array<RemoteBatch, 8> batches;
    int nbatches = 0;
    topo_.for_downwind(p, quad_.angle(a).dir, [&](const PatchNeighbor& nb) {
      if (delta <= 0.0) return;
      const std::int64_t dprog = prep.prog_id(g, a, nb.patch);
      const auto dproc = static_cast<std::size_t>(
          prep.proc_of[static_cast<std::size_t>(nb.patch)]);
      const double bytes =
          delta * static_cast<double>(nb.interface_faces) * cm.item_bytes;
      if (dproc == proc) {
        const double ts =
            std::max(master_free[proc], now) + cm.local_route_ns;
        master_free[proc] = ts;
        result.breakdown.route += cm.local_route_ns;
        events.push(Event{ts, seq++, Event::kDepArrive, dprog, p, c});
        if (rec != nullptr) {
          trace::Track& mt = mtrack(proc);
          mt.record(trace::make_span(trace::EventKind::Route,
                                     vns(ts - cm.local_route_ns), vns(ts)));
          auto send = trace::make_instant(trace::EventKind::StreamSend,
                                          vns(ts));
          send.src = key_of(prog);
          send.dst = key_of(dprog);
          send.bytes = static_cast<std::int64_t>(bytes);
          mt.record(send);
          auto recv = send;
          recv.kind = trace::EventKind::StreamRecv;
          mt.record(recv);
        }
        return;
      }
      RemoteBatch* batch = nullptr;
      for (int i = 0; i < nbatches; ++i)
        if (batches[static_cast<std::size_t>(i)].dproc == dproc)
          batch = &batches[static_cast<std::size_t>(i)];
      if (batch == nullptr && nbatches < 8)
        batch = &batches[static_cast<std::size_t>(nbatches++)];
      if (batch == nullptr) return;  // >8 downwind procs: topology limit
      batch->dproc = dproc;
      batch->bytes += bytes;
      if (batch->count < 8) batch->dprogs[static_cast<std::size_t>(
                                batch->count++)] = dprog;
    });
    {
      // A folded chunk stands for `fold` true executions, each of which
      // would have sent its own (smaller) message: scale per-message
      // service costs and counts; bytes and latency charge once.
      const double fold = prep.fold[static_cast<std::size_t>(p)];
      for (int i = 0; i < nbatches; ++i) {
        const RemoteBatch& batch = batches[static_cast<std::size_t>(i)];
        const double pack_ns = batch.bytes * cm.pack_byte_ns;
        const double route_ns = fold * cm.route_msg_ns;
        const double send_start = std::max(master_free[proc], now);
        const double ts = send_start + pack_ns + route_ns;
        master_free[proc] = ts;
        result.breakdown.pack += pack_ns;
        result.breakdown.route += route_ns;
        result.messages += static_cast<std::int64_t>(fold);
        result.bytes += static_cast<std::int64_t>(batch.bytes);
        const double arrival =
            ts + cm.msg_latency_ns + batch.bytes * cm.byte_ns;
        const double recv_start = std::max(master_free[batch.dproc], arrival);
        const double tr = recv_start + pack_ns + route_ns;
        master_free[batch.dproc] = tr;
        result.breakdown.pack += pack_ns;
        result.breakdown.route += route_ns;
        for (int j = 0; j < batch.count; ++j)
          events.push(Event{tr, seq++, Event::kDepArrive,
                            batch.dprogs[static_cast<std::size_t>(j)], p, c});
        if (rec != nullptr) {
          trace::Track& smt = mtrack(proc);
          smt.record(trace::make_span(trace::EventKind::Pack, vns(send_start),
                                      vns(send_start + pack_ns)));
          smt.record(trace::make_span(trace::EventKind::Route,
                                      vns(send_start + pack_ns), vns(ts)));
          trace::Track& dmt = mtrack(batch.dproc);
          dmt.record(trace::make_span(trace::EventKind::Pack, vns(recv_start),
                                      vns(recv_start + pack_ns)));
          dmt.record(trace::make_span(trace::EventKind::Route,
                                      vns(recv_start + pack_ns), vns(tr)));
          const auto per_stream = static_cast<std::int64_t>(
              batch.bytes / std::max(1, batch.count));
          for (int j = 0; j < batch.count; ++j) {
            auto send = trace::make_instant(trace::EventKind::StreamSend,
                                            vns(ts));
            send.src = key_of(prog);
            send.dst =
                key_of(batch.dprogs[static_cast<std::size_t>(j)]);
            send.bytes = per_stream;
            smt.record(send);
            auto recv = send;
            recv.kind = trace::EventKind::StreamRecv;
            recv.t0_ns = recv.t1_ns = vns(tr);
            dmt.record(recv);
          }
        }
      }
    }

    // This program's next chunk may already be runnable.
    try_activate(prog, now);

    // The worker that finished picks the highest-priority ready chunk.
    auto& queue = ready[proc];
    if (!queue.empty()) {
      const auto entry = queue.top();
      queue.pop();
      start_chunk(entry.prog, now, ev.worker);
    } else {
      free_workers[proc].push_back(ev.worker);
    }
  }

  // Verify completion.
  for (std::int64_t prog = 0; prog < prep.num_programs; ++prog) {
    JSWEEP_CHECK_MSG(
        next_chunk[static_cast<std::size_t>(prog)] ==
            prep.nchunks[static_cast<std::size_t>(
                patch_of(prog))],
        "simulated sweep deadlocked at program " << prog);
  }

  const double elapsed_ns = now + cm.collective_ns(config_.processes);
  if (rec != nullptr)
    for (int proc = 0; proc < config_.processes; ++proc)
      mtrack(static_cast<std::size_t>(proc))
          .record(trace::make_span(trace::EventKind::Collective, vns(now),
                                   vns(elapsed_ns)));
  result.elapsed_seconds = elapsed_ns * 1e-9;
  const double busy_ns = result.breakdown.kernel + result.breakdown.graphop +
                         result.breakdown.pack + result.breakdown.route;
  result.breakdown.kernel *= 1e-9;
  result.breakdown.graphop *= 1e-9;
  result.breakdown.pack *= 1e-9;
  result.breakdown.route *= 1e-9;
  result.breakdown.idle =
      result.elapsed_seconds * result.cores - busy_ns * 1e-9;
  return result;
}

// ---------------------------------------------------------------------------
// BSP superstep simulation (Fig. 17 baseline)
// ---------------------------------------------------------------------------

SimResult DataDrivenSim::run_bsp(const Prepared& prep) {
  const CostModel& cm = config_.cost;
  const double graphop_ns =
      config_.coarsened ? cm.t_graphop_coarse_ns : cm.t_graphop_ns;

  SimResult result;
  result.cores = config_.processes * config_.cores_per_process();
  result.lagged_slots = prep.num_lagged;

  std::vector<std::int32_t> next_chunk(
      static_cast<std::size_t>(prep.num_programs), 0);
  std::vector<std::int32_t> avail(
      static_cast<std::size_t>(prep.num_groups * prep.group_span), -1);

  // Group gates (see run_data_driven); updated at superstep boundaries.
  std::vector<std::int32_t> patch_left(
      static_cast<std::size_t>(prep.num_patches) *
          static_cast<std::size_t>(prep.num_groups),
      prep.num_angles);
  std::vector<std::int64_t> group_left(
      static_cast<std::size_t>(prep.num_groups),
      static_cast<std::int64_t>(prep.num_angles) * prep.num_patches);

  const auto deps_ready = [&](std::int64_t prog) {
    const int g = prep.group_of(prog);
    const auto p = prep.patch_of(prog);
    if (g > 0) {
      if (config_.group_pipelining) {
        if (patch_left[static_cast<std::size_t>(p) * prep.num_groups +
                       static_cast<std::size_t>(g - 1)] > 0)
          return false;
      } else {
        if (group_left[static_cast<std::size_t>(g - 1)] > 0) return false;
      }
    }
    const int a = prep.angle_of(prog);
    const int oct = quad_.angle(a).octant;
    const auto& curves = prep.curves[static_cast<std::size_t>(oct)];
    const std::int32_t c = next_chunk[static_cast<std::size_t>(prog)];
    const std::int64_t base = prep.avail_base(g, a, p, oct);
    const std::int64_t lag_base = prep.avail_base(0, a, p, oct);
    std::int64_t slot = 0;
    bool ok = true;
    topo_.for_upwind(p, quad_.angle(a).dir, [&](const PatchNeighbor& nb) {
      if (ok && !prep.slot_lagged(lag_base + slot)) {
        const int req = curves.required_upwind_chunk(
            c, prep.nchunks[static_cast<std::size_t>(p)],
            prep.nchunks[static_cast<std::size_t>(nb.patch)]);
        if (avail[static_cast<std::size_t>(base + slot)] < req) ok = false;
      }
      ++slot;
    });
    return ok;
  };

  std::int64_t remaining = 0;
  for (std::int32_t p = 0; p < prep.num_patches; ++p)
    remaining += static_cast<std::int64_t>(
                     prep.nchunks[static_cast<std::size_t>(p)]) *
                 prep.num_angles * prep.num_groups;

  double elapsed_ns = 0.0;
  std::vector<double> proc_compute(
      static_cast<std::size_t>(config_.processes));
  std::vector<double> proc_master(
      static_cast<std::size_t>(config_.processes));
  std::vector<std::pair<std::int64_t, std::int32_t>> completed;

  while (remaining > 0) {
    ++result.supersteps;
    double max_chunk_ns = 0.0;
    std::fill(proc_compute.begin(), proc_compute.end(), 0.0);
    std::fill(proc_master.begin(), proc_master.end(), 0.0);
    completed.clear();

    // Compute phase: every ready program executes exactly one chunk.
    for (std::int64_t prog = 0; prog < prep.num_programs; ++prog) {
      const auto p = static_cast<std::int32_t>(prog % prep.num_patches);
      if (next_chunk[static_cast<std::size_t>(prog)] >=
          prep.nchunks[static_cast<std::size_t>(p)])
        continue;
      if (!deps_ready(prog)) continue;
      const std::int32_t c = next_chunk[static_cast<std::size_t>(prog)];
      const auto n = prep.nchunks[static_cast<std::size_t>(p)];
      const std::int64_t cells =
          (c + 1 == n) ? prep.chunk_cells_last[static_cast<std::size_t>(p)]
                       : (topo_.cells(p) + n - 1) / n;
      const double fold = prep.fold[static_cast<std::size_t>(p)];
      const double dur = static_cast<double>(cells) *
                             (cm.t_vertex_ns + graphop_ns) +
                         fold * cm.t_exec_overhead_ns;
      proc_compute[static_cast<std::size_t>(
          prep.proc_of[static_cast<std::size_t>(p)])] += dur;
      max_chunk_ns = std::max(max_chunk_ns, dur);
      result.breakdown.kernel += static_cast<double>(cells) * cm.t_vertex_ns;
      result.breakdown.graphop +=
          static_cast<double>(cells) * graphop_ns + cm.t_exec_overhead_ns;
      ++result.chunk_executions;
      completed.emplace_back(prog, c);
    }
    JSWEEP_CHECK_MSG(!completed.empty(), "BSP simulation stalled");

    // Exchange phase at the superstep boundary.
    for (const auto& [prog, c] : completed) {
      const int a = prep.angle_of(prog);
      const int g = prep.group_of(prog);
      const auto p = prep.patch_of(prog);
      const int oct = quad_.angle(a).octant;
      const auto& curves = prep.curves[static_cast<std::size_t>(oct)];
      next_chunk[static_cast<std::size_t>(prog)] = c + 1;
      --remaining;
      // Advance the group gates (visible next superstep, BSP semantics).
      if (c + 1 == prep.nchunks[static_cast<std::size_t>(p)]) {
        --patch_left[static_cast<std::size_t>(p) * prep.num_groups +
                     static_cast<std::size_t>(g)];
        --group_left[static_cast<std::size_t>(g)];
      }
      const double delta =
          curves.emission_at(c, prep.nchunks[static_cast<std::size_t>(p)]) -
          curves.emission_at(c - 1,
                             prep.nchunks[static_cast<std::size_t>(p)]);
      topo_.for_downwind(p, quad_.angle(a).dir,
                         [&](const PatchNeighbor& nb) {
        // Update the downwind program's avail slot (visible next step).
        const std::int64_t dprog = prep.prog_id(g, a, nb.patch);
        const int doct = oct;
        const std::int64_t base = prep.avail_base(g, a, nb.patch, doct);
        std::int64_t slot = 0;
        topo_.for_upwind(nb.patch, quad_.angle(a).dir,
                         [&](const PatchNeighbor& up) {
          if (up.patch == p) {
            auto& v = avail[static_cast<std::size_t>(base + slot)];
            v = std::max(v, c);
          }
          ++slot;
        });
        (void)dprog;
        if (delta <= 0.0) return;
        const auto sproc = static_cast<std::size_t>(
            prep.proc_of[static_cast<std::size_t>(p)]);
        const auto dproc = static_cast<std::size_t>(
            prep.proc_of[static_cast<std::size_t>(nb.patch)]);
        const double fold = prep.fold[static_cast<std::size_t>(p)];
        if (sproc == dproc) {
          // Local streams still pass through the master's router, exactly
          // as in the data-driven engine.
          proc_master[sproc] += fold * cm.local_route_ns;
          result.breakdown.route += fold * cm.local_route_ns;
        }
        if (sproc != dproc) {
          const double bytes = delta *
                               static_cast<double>(nb.interface_faces) *
                               cm.item_bytes;
          const double pack_ns = bytes * cm.pack_byte_ns;
          const double route_ns = fold * cm.route_msg_ns;
          proc_master[sproc] += pack_ns + route_ns;
          proc_master[dproc] += pack_ns + route_ns;
          result.breakdown.pack += 2.0 * pack_ns;
          result.breakdown.route += 2.0 * route_ns;
          result.messages += static_cast<std::int64_t>(fold);
          result.bytes += static_cast<std::int64_t>(bytes);
        }
      });
    }

    double step_ns = 0.0;
    for (std::size_t proc = 0; proc < proc_compute.size(); ++proc) {
      const double compute =
          proc_compute[proc] / config_.workers_per_process;
      step_ns = std::max(step_ns, compute + proc_master[proc]);
    }
    // Straggler: the last wave of a superstep cannot be packed perfectly.
    step_ns += max_chunk_ns;
    step_ns += cm.msg_latency_ns + cm.collective_ns(config_.processes);
    if (config_.recorder != nullptr) {
      auto e = trace::make_span(trace::EventKind::Superstep,
                                static_cast<std::int64_t>(elapsed_ns),
                                static_cast<std::int64_t>(elapsed_ns +
                                                          step_ns));
      e.bytes = result.supersteps;
      config_.recorder->track(0, trace::kMasterTrack).record(e);
    }
    elapsed_ns += step_ns;
  }

  result.elapsed_seconds = elapsed_ns * 1e-9;
  const double busy_ns = result.breakdown.kernel + result.breakdown.graphop +
                         result.breakdown.pack + result.breakdown.route;
  result.breakdown.kernel *= 1e-9;
  result.breakdown.graphop *= 1e-9;
  result.breakdown.pack *= 1e-9;
  result.breakdown.route *= 1e-9;
  result.breakdown.idle =
      result.elapsed_seconds * result.cores - busy_ns * 1e-9;
  return result;
}

}  // namespace jsweep::sim
