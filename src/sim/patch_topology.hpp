#pragma once

/// \file patch_topology.hpp
/// Patch-level description of a decomposed mesh, the simulator's input.
/// Holding only patch-granularity data (cell counts, neighbor offsets,
/// interface sizes) lets the simulator represent Kobayashi-800-class
/// problems (512M cells, 64k patches) that could never be materialized as
/// cell meshes on this host.

#include <cstdint>
#include <vector>

#include "mesh/geometry.hpp"
#include "partition/patch_set.hpp"
#include "support/ids.hpp"

namespace jsweep::sim {

struct PatchNeighbor {
  std::int32_t patch = -1;        ///< neighbor patch id
  mesh::Vec3 offset;              ///< direction from this patch to neighbor
  std::int64_t interface_faces = 0;  ///< shared cell faces
};

class PatchTopology {
 public:
  [[nodiscard]] std::int32_t num_patches() const {
    return static_cast<std::int32_t>(cells_.size());
  }
  [[nodiscard]] std::int64_t cells(std::int32_t p) const {
    return cells_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] std::int64_t total_cells() const { return total_cells_; }
  [[nodiscard]] const std::vector<PatchNeighbor>& neighbors(
      std::int32_t p) const {
    return neighbors_[static_cast<std::size_t>(p)];
  }
  /// Lattice coordinate of each patch (used for SFC process assignment).
  [[nodiscard]] const mesh::Vec3& position(std::int32_t p) const {
    return positions_[static_cast<std::size_t>(p)];
  }

  /// Upwind neighbors of p for direction omega (dot(offset, Ω) < 0 means
  /// the neighbor feeds us).
  template <class Fn>
  void for_upwind(std::int32_t p, const mesh::Vec3& omega, Fn&& fn) const {
    for (const auto& nb : neighbors(p))
      if (dot(nb.offset, omega) < 0.0) fn(nb);
  }
  template <class Fn>
  void for_downwind(std::int32_t p, const mesh::Vec3& omega, Fn&& fn) const {
    for (const auto& nb : neighbors(p))
      if (dot(nb.offset, omega) > 0.0) fn(nb);
  }

  /// Regular block decomposition of a structured mesh (implicit lattice).
  static PatchTopology structured(mesh::Index3 mesh_dims,
                                  mesh::Index3 patch_dims);

  /// Lattice-of-blocks model of a tetrahedralized ball: keep blocks whose
  /// center lies inside the sphere of `blocks_across/2` block radii; every
  /// kept block holds `cells_per_patch` tets and interfaces carry
  /// `faces_per_interface` tet faces.
  static PatchTopology lattice_ball(int blocks_across,
                                    std::int64_t cells_per_patch,
                                    std::int64_t faces_per_interface);

  /// Same for a cylinder (reactor core model).
  static PatchTopology lattice_cylinder(int blocks_across, int blocks_high,
                                        std::int64_t cells_per_patch,
                                        std::int64_t faces_per_interface);

  /// Exact topology from a real mesh decomposition (host-scale cases).
  static PatchTopology from_patchset(const mesh::TetMesh& m,
                                     const partition::PatchSet& ps);

  /// Assemble from raw arrays (used by the builders; sizes must agree).
  static PatchTopology from_raw(std::vector<std::int64_t> cells,
                                std::vector<std::vector<PatchNeighbor>> neighbors,
                                std::vector<mesh::Vec3> positions);

 private:
  std::vector<std::int64_t> cells_;
  std::vector<std::vector<PatchNeighbor>> neighbors_;
  std::vector<mesh::Vec3> positions_;
  std::int64_t total_cells_ = 0;
};

/// Patch → process assignment over the topology (SFC order on positions).
std::vector<std::int32_t> assign_processes(const PatchTopology& topo,
                                           int processes);

}  // namespace jsweep::sim
