#include "sim/patch_topology.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "partition/block_layout.hpp"
#include "partition/sfc.hpp"
#include "support/check.hpp"

namespace jsweep::sim {

PatchTopology PatchTopology::structured(mesh::Index3 mesh_dims,
                                        mesh::Index3 patch_dims) {
  const partition::StructuredBlockLayout layout(mesh_dims, patch_dims);
  PatchTopology topo;
  const int n = layout.num_patches();
  topo.cells_.resize(static_cast<std::size_t>(n));
  topo.neighbors_.resize(static_cast<std::size_t>(n));
  topo.positions_.resize(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    topo.cells_[static_cast<std::size_t>(p)] = layout.cells_in(PatchId{p});
    topo.total_cells_ += topo.cells_[static_cast<std::size_t>(p)];
    const mesh::Index3 g = layout.patch_index(PatchId{p});
    topo.positions_[static_cast<std::size_t>(p)] = {
        static_cast<double>(g.i), static_cast<double>(g.j),
        static_cast<double>(g.k)};
    for (int d = 0; d < 6; ++d) {
      const auto dir = static_cast<mesh::FaceDir>(d);
      const PatchId nb = layout.neighbor(PatchId{p}, dir);
      if (!nb.valid()) continue;
      topo.neighbors_[static_cast<std::size_t>(p)].push_back(
          {nb.value(), mesh::kFaceNormals[static_cast<std::size_t>(d)],
           layout.interface_cells(PatchId{p}, dir)});
    }
  }
  return topo;
}

namespace {

/// Shared lattice-of-blocks builder with a keep predicate over block
/// coordinates (block side = 1, centered on the lattice).
template <class Keep>
PatchTopology lattice_blocks(mesh::Index3 dims, const Keep& keep,
                             std::int64_t cells_per_patch,
                             std::int64_t faces_per_interface) {
  std::vector<std::int64_t> cells;
  std::vector<mesh::Vec3> positions;
  std::unordered_map<std::int64_t, std::int32_t> id_of;
  const auto key = [&](int i, int j, int k) {
    return i + static_cast<std::int64_t>(dims.i) *
                   (j + static_cast<std::int64_t>(dims.j) * k);
  };
  for (int k = 0; k < dims.k; ++k) {
    for (int j = 0; j < dims.j; ++j) {
      for (int i = 0; i < dims.i; ++i) {
        if (!keep(i, j, k)) continue;
        const auto id = static_cast<std::int32_t>(cells.size());
        id_of.emplace(key(i, j, k), id);
        cells.push_back(cells_per_patch);
        positions.push_back({static_cast<double>(i), static_cast<double>(j),
                             static_cast<double>(k)});
      }
    }
  }
  JSWEEP_CHECK_MSG(!cells.empty(), "lattice model kept no patches");
  std::vector<std::vector<PatchNeighbor>> neighbors(cells.size());
  for (const auto& [k0, id] : id_of) {
    const int i = static_cast<int>(k0 % dims.i);
    const int j = static_cast<int>((k0 / dims.i) % dims.j);
    const int k = static_cast<int>(k0 / (static_cast<std::int64_t>(dims.i) *
                                         dims.j));
    for (int d = 0; d < 6; ++d) {
      const mesh::Index3 off = mesh::kFaceOffsets[static_cast<std::size_t>(d)];
      const int ni = i + off.i;
      const int nj = j + off.j;
      const int nk = k + off.k;
      if (ni < 0 || ni >= dims.i || nj < 0 || nj >= dims.j || nk < 0 ||
          nk >= dims.k)
        continue;
      const auto it = id_of.find(key(ni, nj, nk));
      if (it == id_of.end()) continue;
      neighbors[static_cast<std::size_t>(id)].push_back(
          {it->second, mesh::kFaceNormals[static_cast<std::size_t>(d)],
           faces_per_interface});
    }
  }
  return PatchTopology::from_raw(std::move(cells), std::move(neighbors),
                                 std::move(positions));
}

}  // namespace

PatchTopology PatchTopology::lattice_ball(int blocks_across,
                                          std::int64_t cells_per_patch,
                                          std::int64_t faces_per_interface) {
  JSWEEP_CHECK(blocks_across >= 2);
  const double r = blocks_across / 2.0;
  return lattice_blocks(
      {blocks_across, blocks_across, blocks_across},
      [r, blocks_across](int i, int j, int k) {
        const double x = i + 0.5 - blocks_across / 2.0;
        const double y = j + 0.5 - blocks_across / 2.0;
        const double z = k + 0.5 - blocks_across / 2.0;
        return x * x + y * y + z * z <= r * r;
      },
      cells_per_patch, faces_per_interface);
}

PatchTopology PatchTopology::lattice_cylinder(
    int blocks_across, int blocks_high, std::int64_t cells_per_patch,
    std::int64_t faces_per_interface) {
  JSWEEP_CHECK(blocks_across >= 2 && blocks_high >= 1);
  const double r = blocks_across / 2.0;
  return lattice_blocks(
      {blocks_across, blocks_across, blocks_high},
      [r, blocks_across](int i, int j, int) {
        const double x = i + 0.5 - blocks_across / 2.0;
        const double y = j + 0.5 - blocks_across / 2.0;
        return x * x + y * y <= r * r;
      },
      cells_per_patch, faces_per_interface);
}

PatchTopology PatchTopology::from_patchset(const mesh::TetMesh& m,
                                           const partition::PatchSet& ps) {
  PatchTopology topo;
  const int n = ps.num_patches();
  topo.cells_.resize(static_cast<std::size_t>(n));
  topo.neighbors_.resize(static_cast<std::size_t>(n));
  topo.positions_.resize(static_cast<std::size_t>(n));

  // Interface face counts and centroids from the mesh.
  std::unordered_map<std::int64_t, std::int64_t> interface;  // (p,q) packed
  const auto pack = [n](std::int32_t a, std::int32_t b) {
    return static_cast<std::int64_t>(a) * n + b;
  };
  std::vector<mesh::Vec3> centroid_sum(static_cast<std::size_t>(n));
  for (std::int64_t c = 0; c < m.num_cells(); ++c) {
    const auto p = ps.patch_of(CellId{c}).value();
    centroid_sum[static_cast<std::size_t>(p)] += m.cell_centroid(CellId{c});
    for (const auto f : m.cell_faces(CellId{c})) {
      const CellId other = m.across(f, CellId{c});
      if (!other.valid()) continue;
      const auto q = ps.patch_of(other).value();
      if (q != p) ++interface[pack(p, q)];
    }
  }
  for (int p = 0; p < n; ++p) {
    const auto count = static_cast<std::int64_t>(ps.cells(PatchId{p}).size());
    topo.cells_[static_cast<std::size_t>(p)] = count;
    topo.total_cells_ += count;
    topo.positions_[static_cast<std::size_t>(p)] =
        centroid_sum[static_cast<std::size_t>(p)] /
        static_cast<double>(count);
  }
  for (const auto& [key, faces] : interface) {
    const auto p = static_cast<std::int32_t>(key / n);
    const auto q = static_cast<std::int32_t>(key % n);
    const mesh::Vec3 off = normalized(topo.positions_[static_cast<std::size_t>(q)] -
                                      topo.positions_[static_cast<std::size_t>(p)]);
    topo.neighbors_[static_cast<std::size_t>(p)].push_back({q, off, faces});
  }
  return topo;
}

PatchTopology PatchTopology::from_raw(
    std::vector<std::int64_t> cells,
    std::vector<std::vector<PatchNeighbor>> neighbors,
    std::vector<mesh::Vec3> positions) {
  JSWEEP_CHECK(cells.size() == neighbors.size() &&
               cells.size() == positions.size());
  PatchTopology topo;
  topo.cells_ = std::move(cells);
  topo.neighbors_ = std::move(neighbors);
  topo.positions_ = std::move(positions);
  for (const auto c : topo.cells_) topo.total_cells_ += c;
  return topo;
}

std::vector<std::int32_t> assign_processes(const PatchTopology& topo,
                                           int processes) {
  JSWEEP_CHECK(processes > 0);
  const std::int32_t n = topo.num_patches();
  std::vector<mesh::Vec3> centroids(static_cast<std::size_t>(n));
  for (std::int32_t p = 0; p < n; ++p)
    centroids[static_cast<std::size_t>(p)] = topo.position(p);
  const auto ranks = partition::assign_by_sfc(centroids, processes);
  std::vector<std::int32_t> out(static_cast<std::size_t>(n));
  for (std::int32_t p = 0; p < n; ++p)
    out[static_cast<std::size_t>(p)] =
        ranks[static_cast<std::size_t>(p)].value();
  return out;
}

}  // namespace jsweep::sim
