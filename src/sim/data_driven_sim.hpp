#pragma once

/// \file data_driven_sim.hpp
/// Discrete-event simulator of the JSweep runtime at patch-chunk
/// granularity. One "chunk" is one patch-program execution retiring up to
/// `cluster_grain` vertices (Listing 1's compute batch). The simulator
/// replays the same scheduling decisions as the real engine — per-process
/// priority queues ordered by combined (angle, patch) priority, master
/// threads that pack/route messages, per-strategy boundary pipelining from
/// curves extracted off the real algorithm (see emission.hpp) — and charges
/// the CostModel for every action. This regenerates the paper's scaling
/// experiments at Tianhe-II core counts on a laptop-class host.
///
/// A BSP mode runs the identical workload superstep-wise (one chunk per
/// active program per superstep, communication and a collective at each
/// boundary) — the Fig. 17 baseline.

#include <vector>

#include "graph/priority.hpp"
#include "sim/cost_model.hpp"
#include "sim/emission.hpp"
#include "sim/patch_topology.hpp"
#include "sn/quadrature.hpp"

namespace jsweep::trace {
class Recorder;
}  // namespace jsweep::trace

namespace jsweep::sim {

enum class SimEngine { DataDriven, Bsp };

struct SimConfig {
  int processes = 1;
  /// Workers per process; the paper binds one MPI process per 12-core
  /// processor and reserves a core for the master, so cores = P * 12 and
  /// workers = 11.
  int workers_per_process = 11;
  /// Cores charged per process (workers + master).
  [[nodiscard]] int cores_per_process() const {
    return workers_per_process + 1;
  }

  /// Energy groups: the (patch, angle) task set replicates per group. A
  /// patch's group-(g+1) programs unlock the moment all of its group-g
  /// programs finish (group pipelining — matching the real solver's
  /// activation streams); with `group_pipelining` false, group g+1 waits
  /// for group g to finish *globally* and pays one collective per group
  /// boundary (the barriered ablation baseline).
  int groups = 1;
  bool group_pipelining = true;

  int cluster_grain = 1000;
  /// Event-count cap: a program is simulated with at most this many
  /// chunks. When the true chunk count (cells/grain) exceeds the cap,
  /// several true executions fold into one simulated chunk; per-execution
  /// overhead and message counts are scaled by the fold factor so totals
  /// stay faithful while pipelining granularity coarsens gracefully.
  int max_chunks_per_program = 64;
  graph::PriorityStrategy patch_priority = graph::PriorityStrategy::SLBD;
  graph::PriorityStrategy vertex_priority = graph::PriorityStrategy::SLBD;
  /// Replay on the coarsened graph (cheaper graph-ops; Sec. V-E).
  bool coarsened = false;
  SimEngine engine = SimEngine::DataDriven;

  /// Representative patch used for transfer-curve extraction.
  bool tet_mesh = false;
  mesh::Index3 rep_patch_dims{20, 20, 20};  ///< structured representative
  int rep_block_hexes = 4;                  ///< tet representative

  /// Cycle-breaking model: every (angle, patch, upwind-interface)
  /// dependence slot is independently treated as *lagged* (cut) with this
  /// probability, drawn deterministically from `lag_seed`. Lagged slots
  /// never gate chunk readiness — the simulated sweep runs as the real
  /// engines do on a cycle-broken graph, where cut edges read old-iterate
  /// data instead of waiting. The patch topology's geometric dependence
  /// structure is acyclic by construction, so this models the *cost shift*
  /// of cycle-breaking (better pipelining per sweep, more sweeps needed),
  /// not deadlock avoidance.
  double lagged_fraction = 0.0;
  std::uint64_t lag_seed = 1;

  /// When non-null, the simulation emits virtual-time events (executions,
  /// stream send/recv, master pack/route, collectives) into this recorder
  /// so simulated runs produce traces comparable with real engine runs.
  /// Timestamps are simulated nanoseconds since sweep start.
  trace::Recorder* recorder = nullptr;

  CostModel cost;
};

struct SimBreakdown {
  double kernel = 0.0;   ///< seconds of sweep-kernel work (all cores)
  double graphop = 0.0;  ///< graph bookkeeping + task dispatch
  double pack = 0.0;     ///< master pack/unpack
  double route = 0.0;    ///< master routing service
  double idle = 0.0;     ///< unused core time
};

struct SimResult {
  double elapsed_seconds = 0.0;
  std::int64_t chunk_executions = 0;
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  std::int64_t supersteps = 0;  ///< BSP mode only
  std::int64_t lagged_slots = 0;  ///< dependence slots cut by the lag model
  int cores = 0;
  SimBreakdown breakdown;

  [[nodiscard]] double core_seconds() const {
    return elapsed_seconds * cores;
  }
};

class DataDrivenSim {
 public:
  DataDrivenSim(const PatchTopology& topo, const sn::Quadrature& quad,
                SimConfig config);

  /// Simulate one full sweep over all angles.
  SimResult run();

 private:
  struct Prepared;
  SimResult run_data_driven(const Prepared& prep);
  SimResult run_bsp(const Prepared& prep);

  const PatchTopology& topo_;
  const sn::Quadrature& quad_;
  SimConfig config_;
};

}  // namespace jsweep::sim
