#include "sim/cost_model.hpp"

#include "mesh/structured_mesh.hpp"
#include "sn/discretization.hpp"
#include "sn/quadrature.hpp"
#include "support/timer.hpp"

namespace jsweep::sim {

double calibrate_vertex_ns() {
  // Time the real diamond-difference kernel — the dense hot path the
  // parallel engines actually run — over a 32³ block for one ordinate;
  // report ns per (cell, angle) vertex.
  const mesh::StructuredMesh m({32, 32, 32}, {1, 1, 1});
  sn::CellXs xs;
  const auto n = static_cast<std::size_t>(m.num_cells());
  xs.sigma_t.assign(n, 0.5);
  xs.sigma_s.assign(n, 0.2);
  xs.source.assign(n, 1.0);
  const sn::StructuredDD disc(m, std::move(xs));
  const sn::Ordinate ang{mesh::normalized({0.5, 0.6, 0.62}), 1.0, 0};
  const std::vector<double> q(n, 0.25);

  // Identity slot resolution: structured face ids (cell*6 + dir) are dense
  // enough for a whole-mesh workspace.
  const std::vector<sn::CellFaceSlots> slots =
      sn::build_identity_slots(disc, ang);
  sn::FaceFluxWorkspace flux;
  flux.prepare(m.num_cells() * 6);

  // Warm-up pass (caches, branch predictors), then a timed pass.
  double sink = 0.0;
  double ns = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    flux.reset();
    WallTimer timer;
    for (std::int64_t c = 0; c < m.num_cells(); ++c)
      sink += disc.sweep_cell(
          CellId{c}, ang, q,
          sn::FaceFluxView{&flux, &slots[static_cast<std::size_t>(c)]});
    ns = timer.seconds() * 1e9 / static_cast<double>(m.num_cells());
  }
  // Keep the optimizer honest.
  return sink == -1.0 ? 0.0 : ns;
}

}  // namespace jsweep::sim
