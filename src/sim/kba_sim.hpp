#pragma once

/// \file kba_sim.hpp
/// Pipeline model of the KBA sweep at scale (Table I's Denovo-class
/// comparator). Ranks form a Px×Py column grid, one core per rank; tasks
/// are (rank, angle, z-block) stages whose upwind dependencies and message
/// delays reproduce pipeline fill/drain behavior exactly. Because each
/// rank's task order is static, the schedule is computed by a dependency-
/// ordered pass — no event queue needed.

#include "mesh/geometry.hpp"
#include "sim/cost_model.hpp"
#include "sim/data_driven_sim.hpp"
#include "sn/quadrature.hpp"

namespace jsweep::sim {

struct KbaSimConfig {
  mesh::Index3 mesh_dims{400, 400, 400};
  int px = 1;
  int py = 1;
  int z_block = 10;
  CostModel cost;
};

/// Simulate one full KBA sweep over all angles; `cores` in the result is
/// px*py (one rank per core, the classic KBA deployment).
SimResult simulate_kba(const KbaSimConfig& config, const sn::Quadrature& quad);

}  // namespace jsweep::sim
