#pragma once

/// \file emission.hpp
/// Boundary transfer curves: how quickly a patch-program emits data for its
/// downwind neighbors and how late it can tolerate its upwind inputs, as a
/// function of execution progress. The curves are extracted by replaying
/// the *real* Listing-1 ready-queue order (with the requested vertex
/// priority strategy) on a representative interior patch — the simulator's
/// pipelining behavior is therefore derived from the actual algorithm, not
/// assumed.

#include <cstdint>
#include <vector>

#include "graph/priority.hpp"
#include "mesh/geometry.hpp"

namespace jsweep::sim {

struct TransferCurves {
  /// emission[c]: fraction of outgoing (downwind cross-patch) faces whose
  /// values exist after chunk c completes (cumulative, ends at 1).
  std::vector<double> emission;
  /// consumption[c]: fraction of incoming faces that must have arrived
  /// before chunk c can execute (cumulative, ends at 1).
  std::vector<double> consumption;

  [[nodiscard]] int num_chunks() const {
    return static_cast<int>(emission.size());
  }

  /// Fractional lookups that tolerate a different chunk count than the
  /// representative patch produced.
  [[nodiscard]] double emission_at(int chunk, int total_chunks) const;
  [[nodiscard]] double consumption_at(int chunk, int total_chunks) const;

  /// Minimal upwind chunk (of `upwind_chunks`) whose emission covers this
  /// patch's consumption need before chunk `my_chunk` (of `my_chunks`);
  /// -1 when no upwind data is needed yet.
  [[nodiscard]] int required_upwind_chunk(int my_chunk, int my_chunks,
                                          int upwind_chunks) const;
};

/// Replay a representative structured block patch (interior patch of a
/// 3×3×3 patch lattice) for one direction.
TransferCurves extract_curves_structured(mesh::Index3 patch_dims,
                                         const mesh::Vec3& omega,
                                         graph::PriorityStrategy strategy,
                                         int cluster_grain);

/// Replay a representative tetrahedral block patch: the interior block of
/// a 3×3×3 lattice of blocks, each block `block_hexes`³ hexes = 6·that
/// many tets.
TransferCurves extract_curves_tet(int block_hexes, const mesh::Vec3& omega,
                                  graph::PriorityStrategy strategy,
                                  int cluster_grain);

}  // namespace jsweep::sim
