#include "sim/emission.hpp"

#include <algorithm>
#include <queue>

#include "graph/sweep_dag.hpp"
#include "mesh/generators.hpp"
#include "mesh/structured_mesh.hpp"
#include "partition/block_layout.hpp"
#include "partition/patch_set.hpp"
#include "support/check.hpp"
#include "sweep/sweep_data.hpp"

namespace jsweep::sim {

double TransferCurves::emission_at(int chunk, int total_chunks) const {
  if (chunk < 0) return 0.0;
  const int n = num_chunks();
  const int mapped = std::min(
      n - 1, static_cast<int>((static_cast<std::int64_t>(chunk) + 1) * n /
                                  std::max(1, total_chunks) -
                              1));
  return mapped < 0 ? 0.0 : emission[static_cast<std::size_t>(mapped)];
}

double TransferCurves::consumption_at(int chunk, int total_chunks) const {
  const int n = num_chunks();
  const int mapped =
      std::min(n - 1, static_cast<int>(static_cast<std::int64_t>(chunk) * n /
                                       std::max(1, total_chunks)));
  return consumption[static_cast<std::size_t>(std::max(0, mapped))];
}

int TransferCurves::required_upwind_chunk(int my_chunk, int my_chunks,
                                          int upwind_chunks) const {
  const double need = consumption_at(my_chunk, my_chunks);
  if (need <= 0.0) return -1;
  // Smallest upwind chunk e with emission(e) >= need.
  for (int e = 0; e < upwind_chunks; ++e) {
    if (emission_at(e, upwind_chunks) >= need - 1e-12) return e;
  }
  return upwind_chunks - 1;
}

namespace {

/// Replay the Listing-1 pop order of `data`'s local DAG assuming all
/// remote inputs are available, and accumulate the cumulative emission /
/// consumption fractions per chunk of `grain` vertices.
TransferCurves curves_from_task_data(const sweep::SweepTaskData& data,
                                     int grain) {
  const std::int32_t n = data.num_vertices();
  JSWEEP_CHECK(n > 0 && grain >= 1);

  // Local-only dependency counts (remote inputs assumed present).
  std::vector<std::int32_t> counts(static_cast<std::size_t>(n), 0);
  for (std::int32_t v = 0; v < n; ++v)
    data.for_out_local(v, [&](const sweep::OutLocal& e) {
      ++counts[static_cast<std::size_t>(e.w)];
    });

  // Per-vertex remote edge counts.
  std::vector<std::int32_t> remote_out(static_cast<std::size_t>(n), 0);
  for (std::int32_t v = 0; v < n; ++v)
    data.for_out_remote(v, [&](const sweep::RemoteOut&) {
      ++remote_out[static_cast<std::size_t>(v)];
    });
  std::vector<std::int32_t> remote_in(static_cast<std::size_t>(n), 0);
  for (const auto& e : data.graph().remote_in)
    ++remote_in[static_cast<std::size_t>(e.v)];

  struct Entry {
    double priority;
    std::int32_t v;
    bool operator<(const Entry& o) const {
      if (priority != o.priority) return priority < o.priority;
      return v > o.v;
    }
  };
  std::priority_queue<Entry> ready;
  for (std::int32_t v = 0; v < n; ++v)
    if (counts[static_cast<std::size_t>(v)] == 0)
      ready.push({data.vertex_priority(v), v});

  double total_out = 0;
  double total_in = 0;
  for (std::int32_t v = 0; v < n; ++v) {
    total_out += remote_out[static_cast<std::size_t>(v)];
    total_in += remote_in[static_cast<std::size_t>(v)];
  }
  JSWEEP_CHECK_MSG(total_out > 0 && total_in > 0,
                   "representative patch has no cross-patch edges");

  TransferCurves curves;
  double emitted = 0;
  double consumed = 0;
  std::int32_t popped = 0;
  std::int32_t in_chunk = 0;
  while (!ready.empty()) {
    const auto v = ready.top().v;
    ready.pop();
    ++popped;
    ++in_chunk;
    emitted += remote_out[static_cast<std::size_t>(v)];
    consumed += remote_in[static_cast<std::size_t>(v)];
    data.for_out_local(v, [&](const sweep::OutLocal& e) {
      if (--counts[static_cast<std::size_t>(e.w)] == 0)
        ready.push({data.vertex_priority(e.w), e.w});
    });
    if (in_chunk == grain || ready.empty()) {
      curves.emission.push_back(emitted / total_out);
      curves.consumption.push_back(consumed / total_in);
      in_chunk = 0;
    }
  }
  JSWEEP_CHECK_MSG(popped == n,
                   "representative patch DAG replay incomplete (cycle?)");
  // Consumption must be satisfied *before* a chunk runs: shift by one so
  // consumption[c] is the fraction needed to start chunk c.
  std::vector<double> need(curves.consumption.size());
  for (std::size_t c = 0; c < need.size(); ++c)
    need[c] = curves.consumption[c];
  curves.consumption = std::move(need);
  return curves;
}

}  // namespace

TransferCurves extract_curves_structured(mesh::Index3 patch_dims,
                                         const mesh::Vec3& omega,
                                         graph::PriorityStrategy strategy,
                                         int cluster_grain) {
  const mesh::Index3 dims{3 * patch_dims.i, 3 * patch_dims.j,
                          3 * patch_dims.k};
  const mesh::StructuredMesh m(dims, {1, 1, 1});
  const partition::StructuredBlockLayout layout(dims, patch_dims);
  const partition::PatchSet ps(partition::block_partition(layout),
                               layout.num_patches());
  const PatchId center = layout.patch_at({1, 1, 1});
  const sweep::SweepTaskData data(
      graph::build_patch_task_graph(m, ps, center, omega, AngleId{0}),
      strategy);
  return curves_from_task_data(data, cluster_grain);
}

TransferCurves extract_curves_tet(int block_hexes, const mesh::Vec3& omega,
                                  graph::PriorityStrategy strategy,
                                  int cluster_grain) {
  JSWEEP_CHECK(block_hexes >= 2);
  const int side = 3 * block_hexes;
  const mesh::TetMesh m = mesh::tetrahedralize_lattice(
      {side, side, side}, {1, 1, 1}, {0, 0, 0},
      [](const mesh::Vec3&) { return true; },
      [](const mesh::Vec3&) { return 0; });
  // Tets are generated hex-major (6 per hex), so the block of a tet is the
  // block of its hex.
  const partition::StructuredBlockLayout layout(
      {side, side, side}, {block_hexes, block_hexes, block_hexes});
  std::vector<std::int32_t> cell_patch(
      static_cast<std::size_t>(m.num_cells()));
  for (std::int64_t t = 0; t < m.num_cells(); ++t) {
    const std::int64_t hex = t / 6;
    const int i = static_cast<int>(hex % side);
    const int j = static_cast<int>((hex / side) % side);
    const int k = static_cast<int>(hex / (static_cast<std::int64_t>(side) *
                                          side));
    cell_patch[static_cast<std::size_t>(t)] =
        layout.patch_of({i, j, k}).value();
  }
  const partition::PatchSet ps(std::move(cell_patch), layout.num_patches());
  const PatchId center = layout.patch_at({1, 1, 1});
  const sweep::SweepTaskData data(
      graph::build_patch_task_graph(m, ps, center, omega, AngleId{0}),
      strategy);
  return curves_from_task_data(data, cluster_grain);
}

}  // namespace jsweep::sim
