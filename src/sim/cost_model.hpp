#pragma once

/// \file cost_model.hpp
/// Machine/cost model for the discrete-event performance simulator.
///
/// The paper's evaluation ran on Tianhe-II (2×12-core Xeon E5-2692v2 per
/// node, TH-Express-II at 40 GB/s); this repository substitutes a simulator
/// whose scheduler runs the same patch/priority/clustering logic as the
/// real runtime and charges the costs below. Compute-side constants can be
/// calibrated against this host's real kernels (see calibrate()); network
/// constants follow the published TH-Express-II characteristics.

#include <cstdint>

namespace jsweep::sim {

struct CostModel {
  // --- per-vertex compute -------------------------------------------------
  /// Sweep kernel time per (cell, angle) vertex.
  double t_vertex_ns = 60.0;
  /// Scheduling/graph bookkeeping per vertex in DAG mode (counter updates,
  /// ready-queue operations — the paper's "graph-op").
  double t_graphop_ns = 25.0;
  /// Graph bookkeeping per vertex when replaying on the coarsened graph
  /// (per-cluster, amortized — Sec. V-E).
  double t_graphop_coarse_ns = 4.0;
  /// Fixed cost per patch-program execution (task dispatch).
  double t_exec_overhead_ns = 1500.0;

  // --- communication -------------------------------------------------------
  /// Point-to-point message latency (TH-Express-II class network).
  double msg_latency_ns = 2000.0;
  /// Per-byte wire time (40 GB/s ≈ 0.025 ns/byte).
  double byte_ns = 0.025;
  /// Pack/unpack cost per byte on the master thread.
  double pack_byte_ns = 0.15;
  /// Master routing service per message (lookup + dispatch on the
  /// dedicated master core, Sec. IV-B).
  double route_msg_ns = 300.0;
  /// Master service for a locally-delivered stream.
  double local_route_ns = 120.0;
  /// Bytes per stream item (cell id + face id + flux value).
  double item_bytes = 24.0;

  // --- collectives ----------------------------------------------------------
  /// Barrier/allreduce cost, charged log2(P) times the message latency.
  [[nodiscard]] double collective_ns(int processes) const {
    double levels = 0;
    for (int p = 1; p < processes; p *= 2) ++levels;
    return 2.0 * levels * msg_latency_ns;
  }

  /// Preset for JSNT-U-class unstructured transport: the paper's absolute
  /// ball/reactor runtimes (~100 s per solve at 24 cores for 482k tets,
  /// S4, 4 groups) imply a per-(cell, angle) kernel in the microsecond
  /// range — multigroup upwind FEM physics, ~50x this repository's
  /// one-group step kernel. Unstructured benches use this preset so the
  /// compute/communication balance matches the paper's machine.
  [[nodiscard]] static CostModel jsnt_u() {
    CostModel cm;
    cm.t_vertex_ns = 3000.0;
    cm.t_graphop_ns = 40.0;
    return cm;
  }

  /// Preset for JSNT-S-class structured transport: back-solved the same
  /// way from the paper's Kobayashi-400 runtime (~143 s at 768 cores,
  /// multiple source iterations) — a ~0.5 µs per-(cell, angle) kernel,
  /// i.e. TORT-class physics rather than this repository's bare
  /// diamond-difference update.
  [[nodiscard]] static CostModel jsnt_s() {
    CostModel cm;
    cm.t_vertex_ns = 500.0;
    return cm;
  }
};

/// Measure t_vertex on this host by timing the real diamond-difference
/// kernel over a block of cells; returns ns/vertex. Used by benches that
/// want host-calibrated absolute numbers (shapes do not depend on it).
double calibrate_vertex_ns();

}  // namespace jsweep::sim
