#!/usr/bin/env python3
"""Markdown link check for the repo docs.

Validates every markdown link in the given files (or the default doc set):

  - relative links must point at an existing file or directory, and a
    ``#fragment`` on a markdown target must match a heading anchor in that
    file (GitHub-style slugs);
  - bare intra-file ``#fragment`` links must match a local heading;
  - absolute http(s) URLs are NOT fetched (CI must not flake on the
    network) — they are only syntax-checked.

Exit status 0 = all links resolve; 1 = at least one broken link (each one
is printed with file:line).
"""

from __future__ import annotations

import re
import sys
import unicodedata
from pathlib import Path

DEFAULT_FILES = [
    "README.md",
    "ROADMAP.md",
    "PAPER.md",
    "PAPERS.md",
    "CHANGES.md",
    "docs/ARCHITECTURE.md",
]

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_RE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, strip punctuation, spaces → dashes."""
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # unlink
    text = re.sub(r"[`*_]", "", text)
    text = unicodedata.normalize("NFKD", text)
    out = []
    for ch in text.lower():
        if ch.isalnum():
            out.append(ch)
        elif ch in (" ", "-"):
            out.append("-" if ch == " " else ch)
        # other punctuation is dropped
    return "".join(out)


def heading_anchors(path: Path) -> set[str]:
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def iter_links(path: Path):
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for regex in (LINK_RE, IMAGE_RE):
            for m in regex.finditer(line):
                yield lineno, m.group(1)


def check_file(path: Path, root: Path) -> list[str]:
    errors: list[str] = []
    for lineno, target in iter_links(path):
        where = f"{path.relative_to(root)}:{lineno}"
        if target.startswith(("http://", "https://")):
            if " " in target:
                errors.append(f"{where}: malformed URL '{target}'")
            continue
        if target.startswith("mailto:"):
            continue
        if target.startswith("#"):
            if github_slug(target[1:]) not in heading_anchors(path):
                errors.append(f"{where}: no heading for anchor '{target}'")
            continue
        rel, _, fragment = target.partition("#")
        dest = (path.parent / rel).resolve()
        if not dest.is_relative_to(root):
            # GitHub-web-relative path (e.g. the ../../actions CI badge):
            # outside the working tree, nothing to validate locally.
            continue
        if not dest.exists():
            errors.append(f"{where}: missing file '{rel}'")
            continue
        if fragment and dest.suffix.lower() == ".md":
            if github_slug(fragment) not in heading_anchors(dest):
                errors.append(
                    f"{where}: no heading for anchor '#{fragment}' in '{rel}'")
    return errors


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    files = [Path(a) for a in argv[1:]] or [
        root / f for f in DEFAULT_FILES if (root / f).exists()
    ]
    errors: list[str] = []
    for f in files:
        if not f.exists():
            errors.append(f"{f}: file not found")
            continue
        errors.extend(check_file(f.resolve(), root))
    for e in errors:
        print(f"BROKEN LINK: {e}", file=sys.stderr)
    checked = ", ".join(str(f.relative_to(root) if f.is_absolute() else f)
                        for f in files)
    if not errors:
        print(f"link check OK ({checked})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
