// Unit tests for the live-metrics subsystem (src/metrics): registry
// semantics, concurrency, exposition goldens, the zero-allocation hot-path
// contract, and the trace ↔ metrics cross-check on a real solve.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "metrics/export.hpp"
#include "metrics/metrics.hpp"
#include "metrics/trace_bridge.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/patch_set.hpp"
#include "support/alloc_counter.hpp"
#include "support/check.hpp"
#include "sweep/solver.hpp"
#include "trace/critical_path.hpp"
#include "trace/trace.hpp"

namespace jsweep::metrics {
namespace {

// --- Snapshot lookup helpers (labels are canonical = key-sorted) --------

Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

const SeriesSnapshot* find_series(const std::vector<FamilySnapshot>& snap,
                                  const std::string& name, Labels labels) {
  labels = canonical(std::move(labels));
  for (const FamilySnapshot& fam : snap)
    if (fam.name == name)
      for (const SeriesSnapshot& s : fam.series)
        if (s.labels == labels) return &s;
  return nullptr;
}

std::int64_t counter_value(const std::vector<FamilySnapshot>& snap,
                           const std::string& name, Labels labels) {
  const SeriesSnapshot* s = find_series(snap, name, std::move(labels));
  EXPECT_NE(s, nullptr) << name;
  return s != nullptr ? s->counter_value : 0;
}

double gauge_value(const std::vector<FamilySnapshot>& snap,
                   const std::string& name, Labels labels) {
  const SeriesSnapshot* s = find_series(snap, name, std::move(labels));
  EXPECT_NE(s, nullptr) << name;
  return s != nullptr ? s->gauge_value : 0.0;
}

// --- Instruments --------------------------------------------------------

TEST(Counter, ConcurrentIncrementsSumExactly) {
  Registry reg;
  Counter& c = reg.counter("test_ops_total", "ops");
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c, t] {
      for (std::int64_t i = 0; i < kPerThread; ++i) c.inc(1, t);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.inc(42);
  EXPECT_EQ(c.value(), kThreads * kPerThread + 42);
}

TEST(Gauge, ConcurrentAddsAndSet) {
  Registry reg;
  Gauge& g = reg.gauge("test_depth", "depth");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(g.value(), kThreads * kPerThread);
  g.set(-3.5);
  EXPECT_DOUBLE_EQ(g.value(), -3.5);
}

TEST(Histogram, BucketBoundariesFollowLeSemantics) {
  Registry reg;
  Histogram& h =
      reg.histogram("test_latency_seconds", "latency", {1.0, 2.0, 4.0});
  // v <= bound lands in that bucket: the boundary value itself is INSIDE.
  for (const double v : {0.5, 1.0, 1.5, 2.0, 4.0, 5.0}) h.observe(v);
  const std::vector<std::int64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + the implicit +Inf bucket
  EXPECT_EQ(counts[0], 2);       // 0.5, 1.0
  EXPECT_EQ(counts[1], 2);       // 1.5, 2.0
  EXPECT_EQ(counts[2], 1);       // 4.0
  EXPECT_EQ(counts[3], 1);       // 5.0 overflows
  EXPECT_EQ(h.count(), 6);
  EXPECT_DOUBLE_EQ(h.sum(), 14.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
}

TEST(Histogram, ConcurrentObservationsSumExactly) {
  Registry reg;
  Histogram& h = reg.histogram("test_conc_seconds", "latency", {10.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.observe(1.0, t);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), kThreads * kPerThread);
  EXPECT_EQ(h.bucket_counts()[0], kThreads * kPerThread);
  EXPECT_EQ(h.bucket_counts()[1], 0);
}

TEST(Histogram, EmptyBoundsAndInvalidBounds) {
  Registry reg;
  Histogram& h = reg.histogram("test_unbounded", "x", {});
  h.observe(123.0);
  ASSERT_EQ(h.bucket_counts().size(), 1u);  // only +Inf
  EXPECT_EQ(h.bucket_counts()[0], 1);
  EXPECT_THROW(reg.histogram("test_bad", "x", {2.0, 1.0}), CheckError);
  EXPECT_THROW(reg.histogram("test_dup", "x", {1.0, 1.0}), CheckError);
}

// --- Registry contracts -------------------------------------------------

TEST(Registry, SameNameAndLabelsYieldSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("x_total", "x", {{"rank", "0"}, {"path", "a"}});
  // Label order is identity-insensitive (canonicalized by key sort).
  Counter& b = reg.counter("x_total", "x", {{"path", "a"}, {"rank", "0"}});
  EXPECT_EQ(&a, &b);
  Counter& other = reg.counter("x_total", "x", {{"rank", "1"}, {"path", "a"}});
  EXPECT_NE(&a, &other);
  a.inc(7);
  EXPECT_EQ(b.value(), 7);
}

TEST(Registry, KindAndBoundsMismatchesThrow) {
  Registry reg;
  reg.counter("a_total", "a");
  EXPECT_THROW(reg.gauge("a_total", "a"), CheckError);
  EXPECT_THROW(reg.histogram("a_total", "a", {1.0}), CheckError);
  reg.histogram("h_seconds", "h", {1.0, 2.0});
  // All series of one histogram family share one bound set.
  EXPECT_THROW(reg.histogram("h_seconds", "h", {1.0, 3.0}, {{"rank", "1"}}),
               CheckError);
  EXPECT_NO_THROW(reg.histogram("h_seconds", "h", {1.0, 2.0}, {{"rank", "1"}}));
}

TEST(Registry, NameValidation) {
  Registry reg;
  EXPECT_THROW(reg.counter("", "x"), CheckError);
  EXPECT_THROW(reg.counter("1bad", "x"), CheckError);
  EXPECT_THROW(reg.counter("has space", "x"), CheckError);
  EXPECT_THROW(reg.counter("has-dash", "x"), CheckError);
  EXPECT_NO_THROW(reg.counter("_ok_Total_9", "x"));
}

TEST(Registry, ExponentialBuckets) {
  const std::vector<double> b = Registry::exponential_buckets(1e-3, 10.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1e-3);
  EXPECT_DOUBLE_EQ(b[1], 1e-2);
  EXPECT_DOUBLE_EQ(b[2], 1e-1);
  EXPECT_DOUBLE_EQ(b[3], 1.0);
  EXPECT_THROW(Registry::exponential_buckets(0.0, 2.0, 3), CheckError);
  EXPECT_THROW(Registry::exponential_buckets(1.0, 1.0, 3), CheckError);
  EXPECT_THROW(Registry::exponential_buckets(1.0, 2.0, 0), CheckError);
}

TEST(Registry, ExponentialBucketsRejectDegenerateArguments) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  // Negative start/factor and sub-one factors would produce non-monotone
  // bounds; non-finite values would poison every bucket downstream.
  EXPECT_THROW(Registry::exponential_buckets(-1.0, 2.0, 3), CheckError);
  EXPECT_THROW(Registry::exponential_buckets(1.0, 0.5, 3), CheckError);
  EXPECT_THROW(Registry::exponential_buckets(1.0, -2.0, 3), CheckError);
  EXPECT_THROW(Registry::exponential_buckets(kInf, 2.0, 3), CheckError);
  EXPECT_THROW(Registry::exponential_buckets(kNan, 2.0, 3), CheckError);
  EXPECT_THROW(Registry::exponential_buckets(1.0, kInf, 3), CheckError);
  EXPECT_THROW(Registry::exponential_buckets(1.0, kNan, 3), CheckError);
  // The smallest valid request still works.
  const std::vector<double> one = Registry::exponential_buckets(2.0, 3.0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 2.0);
}

// --- Exposition goldens -------------------------------------------------

/// One fixed registry shared by both golden checks.
void fill_golden(Registry& reg) {
  reg.counter("demo_ops_total", "operations", {{"rank", "0"}}).inc(3);
  reg.counter("demo_ops_total", "operations", {{"rank", "1"}}).inc(5);
  reg.gauge("demo_depth", "queue \"depth\"").set(2.5);
  Histogram& h = reg.histogram("demo_seconds", "latency", {0.5, 1.0});
  h.observe(0.25);
  h.observe(0.75);
  h.observe(2.0);
}

TEST(Exposition, PrometheusGolden) {
  Registry reg;
  fill_golden(reg);
  const std::string expected =
      "# HELP demo_ops_total operations\n"
      "# TYPE demo_ops_total counter\n"
      "demo_ops_total{rank=\"0\"} 3\n"
      "demo_ops_total{rank=\"1\"} 5\n"
      "# HELP demo_depth queue \\\"depth\\\"\n"
      "# TYPE demo_depth gauge\n"
      "demo_depth 2.5\n"
      "# HELP demo_seconds latency\n"
      "# TYPE demo_seconds histogram\n"
      "demo_seconds_bucket{le=\"0.5\"} 1\n"
      "demo_seconds_bucket{le=\"1\"} 2\n"
      "demo_seconds_bucket{le=\"+Inf\"} 3\n"
      "demo_seconds_sum 3\n"
      "demo_seconds_count 3\n";
  EXPECT_EQ(to_prometheus(reg), expected);
}

TEST(Exposition, JsonGolden) {
  Registry reg;
  fill_golden(reg);
  const std::string expected = R"({
  "schema": "jsweep-metrics-v1",
  "metrics": [
    {"name": "demo_ops_total", "kind": "counter", "help": "operations", "series": [
      {"labels": {"rank": "0"}, "value": 3},
      {"labels": {"rank": "1"}, "value": 5}
    ]},
    {"name": "demo_depth", "kind": "gauge", "help": "queue \"depth\"", "series": [
      {"labels": {}, "value": 2.5}
    ]},
    {"name": "demo_seconds", "kind": "histogram", "help": "latency", "series": [
      {"labels": {}, "count": 3, "sum": 3, "max": 2, "buckets": [{"le": 0.5, "count": 1}, {"le": 1, "count": 2}, {"le": null, "count": 3}]}
    ]}
  ]
}
)";
  EXPECT_EQ(to_json(reg), expected);
}

TEST(Exposition, WriteSnapshotPicksFormatByExtension) {
  Registry reg;
  fill_golden(reg);
  const std::string dir = ::testing::TempDir();
  write_snapshot(reg, dir + "/metrics.json");
  write_snapshot(reg, dir + "/metrics.prom");
  const auto slurp = [](const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::string out;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
    std::fclose(f);
    return out;
  };
  EXPECT_EQ(slurp(dir + "/metrics.json"), to_json(reg));
  EXPECT_EQ(slurp(dir + "/metrics.prom"), to_prometheus(reg));
  EXPECT_THROW(write_snapshot(reg, "/nonexistent-dir/x.json"), CheckError);

  // Extension matching is case-insensitive (a `.JSON` dump from a shell
  // script must not silently come out in the other format).
  write_snapshot(reg, dir + "/upper.JSON");
  write_snapshot(reg, dir + "/mixed.Prom");
  EXPECT_EQ(slurp(dir + "/upper.JSON"), to_json(reg));
  EXPECT_EQ(slurp(dir + "/mixed.Prom"), to_prometheus(reg));

  // Unknown or missing extensions refuse loudly instead of guessing.
  EXPECT_THROW(write_snapshot(reg, dir + "/metrics.txt"), CheckError);
  EXPECT_THROW(write_snapshot(reg, dir + "/metrics"), CheckError);
  // A dot in a parent directory is not an extension of the file.
  EXPECT_THROW(write_snapshot(reg, dir + "/v1.2/metrics"), CheckError);
}

// --- Hot-path allocation gate -------------------------------------------

TEST(HotPath, CounterAndHistogramUpdatesAllocateNothing) {
  Registry reg;
  Counter& c = reg.counter("hot_total", "hot");
  Gauge& g = reg.gauge("hot_depth", "hot");
  Histogram& h = reg.histogram(
      "hot_seconds", "hot", Registry::exponential_buckets(1e-6, 4.0, 12));
  // Warm up, then gate: the update path must be allocation-free (the
  // engine calls it from every worker on every task).
  c.inc();
  g.add(1.0);
  h.observe(1e-4);
  const std::int64_t before = support::allocation_count();
  for (int i = 0; i < 10000; ++i) {
    c.inc(1, i);
    g.add(0.5);
    g.set(1.0);
    h.observe(1e-5 * i, i);
  }
  EXPECT_EQ(support::allocation_count() - before, 0);
}

// --- Trace bridge -------------------------------------------------------

TEST(TraceBridge, FoldsPerRankBreakdowns) {
  trace::ProfileReport report;
  trace::RankBreakdown r0;
  r0.rank = 0;
  r0.executions = 17;
  r0.busy_seconds = 1.5;
  r0.idle_seconds = 0.5;
  trace::RankBreakdown r1;
  r1.rank = 1;
  r1.executions = 19;
  r1.busy_seconds = 1.25;
  report.ranks = {r0, r1};

  Registry reg;
  fold_profile(report, reg);
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(
      gauge_value(snap, "jsweep_trace_executions", {{"rank", "0"}}), 17.0);
  EXPECT_DOUBLE_EQ(
      gauge_value(snap, "jsweep_trace_executions", {{"rank", "1"}}), 19.0);
  EXPECT_DOUBLE_EQ(
      gauge_value(snap, "jsweep_trace_busy_seconds", {{"rank", "0"}}), 1.5);
  EXPECT_DOUBLE_EQ(
      gauge_value(snap, "jsweep_trace_idle_seconds", {{"rank", "0"}}), 0.5);
  // Re-folding overwrites (set, not add).
  fold_profile(report, reg);
  EXPECT_DOUBLE_EQ(
      gauge_value(reg.snapshot(), "jsweep_trace_executions", {{"rank", "0"}}),
      17.0);
}

// --- Live metrics on a real solve: trace ↔ metrics cross-check ----------

TEST(CrossCheck, LiveMetricsAgreeWithStatsAndTraceAnalysis) {
  const mesh::StructuredMesh mesh = mesh::make_kobayashi_mesh(8);
  const partition::StructuredBlockLayout layout({8, 8, 8}, {2, 2, 2});
  const partition::CsrGraph graph = partition::cell_graph(mesh);
  const partition::PatchSet patches(partition::block_partition(layout),
                                    layout.num_patches(), &graph);
  const sn::CellXs xs = sn::expand(sn::MaterialTable::kobayashi(),
                                   mesh.materials(), mesh.num_cells());
  const sn::StructuredDD disc(mesh, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const std::vector<double> q(static_cast<std::size_t>(mesh.num_cells()),
                              0.25);

  trace::Recorder recorder;
  Registry registry;  // one registry for the whole in-process cluster
  constexpr int kRanks = 2;
  std::vector<sweep::SolveStats> stats(kRanks);
  comm::Cluster::run(kRanks, [&](comm::Context& ctx) {
    const auto owner =
        partition::assign_contiguous(patches.num_patches(), ctx.size());
    sweep::SolverConfig config;
    config.num_workers = 2;
    config.trace.recorder = &recorder;
    config.metrics.registry = &registry;
    sweep::SweepSolver solver(ctx, mesh, patches, owner, disc, quad, config);
    for (int i = 0; i < 3; ++i) solver.sweep(q);
    stats[static_cast<std::size_t>(ctx.rank().value())] = solver.stats();
  });

  fold_profile(trace::analyze(recorder), registry);
  const auto snap = registry.snapshot();
  const trace::ProfileReport report = trace::analyze(recorder);
  ASSERT_EQ(report.ranks.size(), static_cast<std::size_t>(kRanks));

  for (const trace::RankBreakdown& rb : report.ranks) {
    const Labels rank{{"rank", std::to_string(rb.rank)}};
    const auto& st = stats[static_cast<std::size_t>(rb.rank)];

    // Live executions vs post-mortem trace reconstruction: the recorder
    // logs one Exec span per execution and the counter increments once per
    // completion, so the accumulated totals agree exactly. (Per-run
    // executions are scheduling-dependent — a program runs once per input
    // burst — so the LAST run's stats only bound the accumulated counter.)
    const std::int64_t live_execs =
        counter_value(snap, "jsweep_engine_executions_total", rank);
    EXPECT_EQ(live_execs, rb.executions);
    EXPECT_GE(live_execs, st.engine.executions);
    EXPECT_EQ(counter_value(snap, "jsweep_engine_runs_total", rank), 3);

    // Busy seconds: the live gauge accumulates the same worker timers the
    // trace spans reconstruct — agree within a loose scheduling tolerance.
    const double live_busy =
        gauge_value(snap, "jsweep_engine_worker_busy_seconds", rank);
    const double trace_busy =
        gauge_value(snap, "jsweep_trace_busy_seconds", rank);
    EXPECT_NEAR(live_busy, trace_busy, 0.05 + 0.5 * trace_busy);

    // The routed-stream counters accumulate across runs; the last run's
    // stats bound them from below.
    EXPECT_GE(counter_value(snap, "jsweep_engine_streams_total",
                            {{"rank", std::to_string(rb.rank)},
                             {"path", "local"}}),
              st.engine.streams_local);
    EXPECT_GE(counter_value(snap, "jsweep_engine_streams_total",
                            {{"rank", std::to_string(rb.rank)},
                             {"path", "remote"}}),
              st.engine.streams_remote);

    // The master-idle stat is new EngineStats surface: live gauge and
    // stats field come from the same accumulation.
    const double live_master_idle =
        gauge_value(snap, "jsweep_engine_master_idle_seconds", rank);
    EXPECT_GE(live_master_idle, st.engine.master_idle_seconds);

    // Session-level instruments.
    EXPECT_EQ(counter_value(snap, "jsweep_session_sweeps_total",
                            {{"rank", std::to_string(rb.rank)},
                             {"lane", "0"}}),
              3);
  }
}

// --- Pipeline metrics on a real multigroup solve ------------------------

TEST(PipelineMetrics, ActivationLatencyAndFillPublished) {
  const mesh::StructuredMesh mesh = mesh::make_kobayashi_mesh(8);
  const partition::StructuredBlockLayout layout({8, 8, 8}, {4, 4, 4});
  const partition::CsrGraph graph = partition::cell_graph(mesh);
  const partition::PatchSet patches(partition::block_partition(layout),
                                    layout.num_patches(), &graph);
  const sn::MaterialTable table = sn::MaterialTable::kobayashi();
  const sn::CellXs xs =
      sn::expand(table, mesh.materials(), mesh.num_cells());
  const sn::StructuredDD disc(mesh, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  constexpr int kGroups = 3;
  const sn::MultigroupXs mxs =
      sn::MultigroupXs::cascade(table, mesh.materials(), mesh.num_cells(),
                                kGroups);

  Registry registry;
  comm::Cluster::run(2, [&](comm::Context& ctx) {
    const auto owner =
        partition::assign_contiguous(patches.num_patches(), ctx.size());
    sweep::SolverConfig config;
    config.num_workers = 2;
    config.multigroup = &mxs;
    config.group_pipelining = true;
    config.metrics.registry = &registry;
    sweep::SweepSolver solver(ctx, mesh, patches, owner, disc, quad, config);
    sn::MultigroupOptions mg;
    mg.inner = {1e-5, 50, false};
    solver.solve_multigroup(mg);
  });

  const auto snap = registry.snapshot();
  for (int rank = 0; rank < 2; ++rank) {
    // Pipeline families carry the group-set width (1 here: per-group).
    const Labels labels{{"rank", std::to_string(rank)}, {"set_width", "1"}};
    const std::int64_t passes =
        counter_value(snap, "jsweep_pipeline_passes_total", labels);
    EXPECT_GE(passes, 1);
    // Each pass activates every local (patch, group>0) program once.
    EXPECT_GT(counter_value(snap, "jsweep_pipeline_activations_total", labels),
              0);
    // The activation-latency histogram saw one sample per (patch, gated
    // group) per pass, all non-negative.
    const SeriesSnapshot* lat = find_series(
        snap, "jsweep_pipeline_activation_latency_seconds", labels);
    ASSERT_NE(lat, nullptr);
    EXPECT_GT(lat->histogram.count, 0);
    EXPECT_GE(lat->histogram.sum, 0.0);
    // Fill time: every gated group opened at some non-negative pass time.
    EXPECT_GE(gauge_value(snap, "jsweep_pipeline_fill_seconds", labels), 0.0);
    for (int g = 1; g < kGroups; ++g) {
      const SeriesSnapshot* open = find_series(
          snap, "jsweep_pipeline_group_first_open_seconds",
          {{"rank", std::to_string(rank)},
           {"set_width", "1"},
           {"group", std::to_string(g)}});
      ASSERT_NE(open, nullptr) << "group " << g;
      EXPECT_GE(open->gauge_value, 0.0);
    }
  }
}

}  // namespace
}  // namespace jsweep::metrics
