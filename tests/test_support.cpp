// Unit tests for the support layer: ids, rng, stats, tables, checks, timers.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>

#include "support/check.hpp"
#include "support/ids.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace jsweep {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  PatchId p;
  EXPECT_FALSE(p.valid());
  EXPECT_EQ(p, PatchId::invalid());
}

TEST(StrongId, ComparesByValue) {
  EXPECT_LT(PatchId{1}, PatchId{2});
  EXPECT_EQ(PatchId{7}, PatchId{7});
  EXPECT_NE(PatchId{7}, PatchId{8});
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<PatchId, AngleId>);
  static_assert(!std::is_same_v<CellId, PatchId>);
}

TEST(StrongId, StreamsItsValue) {
  std::ostringstream os;
  os << PatchId{42};
  EXPECT_EQ(os.str(), "42");
}

TEST(ProgramKey, OrderingAndHash) {
  const ProgramKey a{PatchId{1}, TaskTag{2}};
  const ProgramKey b{PatchId{1}, TaskTag{3}};
  const ProgramKey c{PatchId{2}, TaskTag{0}};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (ProgramKey{PatchId{1}, TaskTag{2}}));
  const std::hash<ProgramKey> h;
  EXPECT_NE(h(a), h(b));  // overwhelmingly likely for a good mix
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit
}

TEST(Rng, RangeInclusive) {
  Rng r(11);
  bool lo_seen = false;
  bool hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen |= (v == -3);
    hi_seen |= (v == 3);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all;
  RunningStat a;
  RunningStat b;
  Rng r(5);
  for (int i = 0; i < 500; ++i) {
    const double x = r.uniform(-10, 10);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, EmptyIsZero) {
  const RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-5.0);  // clamps to bin 0
  h.add(25.0);  // clamps to bin 4
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(4), 2);
  EXPECT_EQ(h.total(), 4);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), CheckError);
}

TEST(Efficiency, SpeedupAndParallelEfficiency) {
  EXPECT_DOUBLE_EQ(speedup(100.0, 25.0), 4.0);
  // 4x speedup on 8x the cores = 50% efficiency.
  EXPECT_DOUBLE_EQ(parallel_efficiency(100.0, 96, 25.0, 768), 0.5);
}

TEST(Table, AlignsAndCounts) {
  Table t({"cores", "time"});
  t.add_row({"96", "1.5"});
  t.add_row({"768", "0.25"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.str();
  EXPECT_NE(s.find("cores"), std::string::npos);
  EXPECT_NE(s.find("768"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(42)), "42");
}

TEST(Check, ThrowsWithMessage) {
  try {
    JSWEEP_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

TEST(Timer, MeasuresElapsed) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.seconds(), 0.005);
  EXPECT_LT(t.seconds(), 5.0);
}

TEST(IntervalAccumulator, AccumulatesIntervals) {
  IntervalAccumulator acc;
  for (int i = 0; i < 3; ++i) {
    acc.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    acc.stop();
  }
  EXPECT_EQ(acc.count(), 3);
  EXPECT_GE(acc.seconds(), 0.003);
}

}  // namespace
}  // namespace jsweep

// --- Logging -----------------------------------------------------------------

#include "support/log.hpp"

namespace jsweep {
namespace {

TEST(Log, LevelThresholdRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // Below-threshold macro must not evaluate its stream arguments.
  int evaluations = 0;
  const auto count = [&]() {
    ++evaluations;
    return 42;
  };
  JSWEEP_DEBUG("value " << count());
  EXPECT_EQ(evaluations, 0);
  set_log_level(LogLevel::Off);
  JSWEEP_ERROR("suppressed " << count());
  EXPECT_EQ(evaluations, 0);
  set_log_level(before);
}

}  // namespace
}  // namespace jsweep
