// Tests for the AMR substrate: Berger–Rigoutsos clustering and the
// two-level hierarchy (coverage, disjointness, efficiency, nesting).

#include <gtest/gtest.h>

#include "mesh/amr.hpp"
#include "mesh/generators.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace jsweep::mesh {
namespace {

std::vector<char> empty_tags(Index3 d) {
  return std::vector<char>(
      static_cast<std::size_t>(d.i) * d.j * d.k, 0);
}

void tag(std::vector<char>& tags, Index3 d, Index3 p) {
  tags[static_cast<std::size_t>(
      p.i + static_cast<std::int64_t>(d.i) *
                (p.j + static_cast<std::int64_t>(d.j) * p.k))] = 1;
}

/// Coverage + disjointness invariants shared by all clustering tests.
void check_invariants(Index3 d, const std::vector<char>& tags,
                      const std::vector<Box>& boxes) {
  std::vector<char> covered(tags.size(), 0);
  for (const auto& box : boxes) {
    for (int k = box.lo.k; k < box.hi.k; ++k) {
      for (int j = box.lo.j; j < box.hi.j; ++j) {
        for (int i = box.lo.i; i < box.hi.i; ++i) {
          auto& c = covered[static_cast<std::size_t>(
              i + static_cast<std::int64_t>(d.i) *
                      (j + static_cast<std::int64_t>(d.j) * k))];
          EXPECT_EQ(c, 0) << "boxes overlap at " << i << "," << j << "," << k;
          c = 1;
        }
      }
    }
  }
  for (std::size_t c = 0; c < tags.size(); ++c) {
    if (tags[c]) {
      EXPECT_TRUE(covered[c]) << "tagged cell " << c << " uncovered";
    }
  }
}

TEST(BergerRigoutsos, EmptyTagsYieldNoBoxes) {
  const Index3 d{8, 8, 8};
  EXPECT_TRUE(cluster_tagged_cells(d, empty_tags(d)).empty());
}

TEST(BergerRigoutsos, SingleTagTightBox) {
  const Index3 d{8, 8, 8};
  auto tags = empty_tags(d);
  tag(tags, d, {3, 4, 5});
  const auto boxes = cluster_tagged_cells(d, tags);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0].volume(), 1);
  EXPECT_TRUE(boxes[0].contains({3, 4, 5}));
}

TEST(BergerRigoutsos, CompactBlockIsOneBox) {
  const Index3 d{16, 16, 16};
  auto tags = empty_tags(d);
  for (int k = 4; k < 8; ++k)
    for (int j = 4; j < 8; ++j)
      for (int i = 4; i < 8; ++i) tag(tags, d, {i, j, k});
  const auto boxes = cluster_tagged_cells(d, tags);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0], (Box{{4, 4, 4}, {8, 8, 8}}));
  check_invariants(d, tags, boxes);
}

TEST(BergerRigoutsos, TwoSeparatedClustersSplit) {
  const Index3 d{20, 8, 8};
  auto tags = empty_tags(d);
  for (int i = 0; i < 3; ++i) tag(tags, d, {i, 2, 2});
  for (int i = 16; i < 20; ++i) tag(tags, d, {i, 5, 5});
  const auto boxes = cluster_tagged_cells(d, tags, 0.7);
  EXPECT_GE(boxes.size(), 2u);
  check_invariants(d, tags, boxes);
  // Efficiency holds: total box volume close to tag count.
  std::int64_t volume = 0;
  for (const auto& b : boxes) volume += b.volume();
  EXPECT_LE(volume, 7 * 3);  // loose bound: far better than one 20x8x8 box
}

TEST(BergerRigoutsos, LShapeRespectsEfficiency) {
  const Index3 d{16, 16, 1};
  auto tags = empty_tags(d);
  for (int i = 0; i < 16; ++i) tag(tags, d, {i, 0, 0});   // bottom bar
  for (int j = 0; j < 16; ++j) tag(tags, d, {0, j, 0});   // left bar
  const auto boxes = cluster_tagged_cells(d, tags, 0.8);
  check_invariants(d, tags, boxes);
  std::int64_t volume = 0;
  std::int64_t tagged = 31;
  for (const auto& b : boxes) volume += b.volume();
  EXPECT_LE(static_cast<double>(volume), tagged / 0.5);
}

TEST(BergerRigoutsos, RandomTagsInvariantsHold) {
  Rng rng(999);
  for (int trial = 0; trial < 10; ++trial) {
    const Index3 d{12, 10, 8};
    auto tags = empty_tags(d);
    const int count = 5 + static_cast<int>(rng.below(60));
    for (int t = 0; t < count; ++t)
      tag(tags, d,
          {static_cast<int>(rng.below(12)), static_cast<int>(rng.below(10)),
           static_cast<int>(rng.below(8))});
    const auto boxes = cluster_tagged_cells(d, tags, 0.65);
    check_invariants(d, tags, boxes);
  }
}

TEST(AmrHierarchy, RefinesKobayashiSourceAndDuct) {
  StructuredMesh coarse = mesh::make_kobayashi_mesh(20);
  const AmrHierarchy amr(
      coarse,
      [&](CellId c) { return coarse.material(c) != kMatShield; },  // src+duct
      2, 0.7, 1);
  EXPECT_FALSE(amr.fine_boxes().empty());
  // Every non-shield cell is refined.
  for (std::int64_t c = 0; c < coarse.num_cells(); ++c) {
    if (coarse.material(CellId{c}) != kMatShield) {
      EXPECT_TRUE(amr.is_refined(CellId{c}));
    }
  }
  // Composite has more cells than coarse but less than full refinement.
  EXPECT_GT(amr.composite_cells(), coarse.num_cells());
  EXPECT_LT(amr.composite_cells(), coarse.num_cells() * 8);
  // Fine boxes are ratio-aligned.
  for (std::size_t b = 0; b < amr.fine_boxes().size(); ++b) {
    EXPECT_EQ(amr.fine_boxes()[b].lo.i % 2, 0);
    EXPECT_EQ(amr.fine_boxes()[b].volume(),
              amr.coarse_boxes()[b].volume() * 8);
  }
}

TEST(AmrHierarchy, BoxMeshGeometryAndMaterials) {
  StructuredMesh coarse = mesh::make_kobayashi_mesh(10);
  const AmrHierarchy amr(
      coarse, [&](CellId c) { return coarse.material(c) == kMatSource; }, 2,
      0.7, 0);
  ASSERT_FALSE(amr.fine_boxes().empty());
  const StructuredMesh fine = amr.box_mesh(0);
  // Spacing halves; box origin sits on the parent's corner.
  EXPECT_DOUBLE_EQ(fine.spacing().x, coarse.spacing().x / 2.0);
  // Fine cells inherit the parent material (source box → all source).
  for (std::int64_t c = 0; c < fine.num_cells(); ++c)
    EXPECT_EQ(fine.material(CellId{c}), kMatSource);
  // Fine box volume in physical units equals the coarse box's.
  const double fine_volume =
      static_cast<double>(fine.num_cells()) * fine.cell_volume();
  const double coarse_volume =
      static_cast<double>(amr.coarse_boxes()[0].volume()) *
      coarse.cell_volume();
  EXPECT_NEAR(fine_volume, coarse_volume, 1e-9 * coarse_volume);
}

TEST(AmrHierarchy, NestingBufferGrowsBoxes) {
  StructuredMesh coarse({12, 12, 12}, {1, 1, 1});
  const auto tag_center = [&](CellId c) {
    const Index3 p = coarse.index_of(c);
    return p.i == 6 && p.j == 6 && p.k == 6;
  };
  const AmrHierarchy none(coarse, tag_center, 2, 0.7, 0);
  const AmrHierarchy buffered(coarse, tag_center, 2, 0.7, 2);
  EXPECT_GT(buffered.fine_cells(), none.fine_cells());
  // Buffered box contains the unbuffered one.
  EXPECT_TRUE(buffered.coarse_boxes()[0].contains({6, 6, 6}));
  EXPECT_TRUE(buffered.coarse_boxes()[0].contains({4, 4, 4}));
}

}  // namespace
}  // namespace jsweep::mesh
