// Tests for geometry, structured & tetrahedral meshes, generators and
// refinement.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <numbers>

#include "mesh/generators.hpp"
#include "mesh/geometry.hpp"
#include "mesh/refine.hpp"
#include "mesh/structured_mesh.hpp"
#include "mesh/tet_mesh.hpp"
#include "support/check.hpp"

namespace jsweep::mesh {
namespace {

TEST(Geometry, VectorAlgebra) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(a - b, (Vec3{-3, -3, -3}));
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_EQ(cross(Vec3{1, 0, 0}, Vec3{0, 1, 0}), (Vec3{0, 0, 1}));
  EXPECT_DOUBLE_EQ(norm(Vec3{3, 4, 0}), 5.0);
  const Vec3 n = normalized(Vec3{0, 0, 9});
  EXPECT_DOUBLE_EQ(n.z, 1.0);
}

TEST(Geometry, BoxContainsAndVolume) {
  const Box b{{0, 0, 0}, {2, 3, 4}};
  EXPECT_TRUE(b.contains({0, 0, 0}));
  EXPECT_TRUE(b.contains({1, 2, 3}));
  EXPECT_FALSE(b.contains({2, 0, 0}));
  EXPECT_FALSE(b.contains({0, -1, 0}));
  EXPECT_EQ(b.volume(), 24);
  EXPECT_EQ((b.intersect(Box{{1, 1, 1}, {5, 5, 5}}).volume()), 1 * 2 * 3);
  EXPECT_EQ((b.intersect(Box{{9, 9, 9}, {10, 10, 10}}).volume()), 0);
}

TEST(Geometry, OppositeFaces) {
  EXPECT_EQ(opposite(FaceDir::XLo), FaceDir::XHi);
  EXPECT_EQ(opposite(FaceDir::YHi), FaceDir::YLo);
  EXPECT_EQ(opposite(FaceDir::ZLo), FaceDir::ZHi);
}

TEST(StructuredMesh, IndexRoundTrip) {
  const StructuredMesh m({4, 5, 6}, {1, 1, 1});
  EXPECT_EQ(m.num_cells(), 120);
  for (std::int64_t c = 0; c < m.num_cells(); ++c)
    EXPECT_EQ(m.cell_at(m.index_of(CellId{c})), CellId{c});
}

TEST(StructuredMesh, NeighborsAndBoundaries) {
  const StructuredMesh m({3, 3, 3}, {1, 1, 1});
  const CellId center = m.cell_at({1, 1, 1});
  for (int d = 0; d < 6; ++d) {
    const auto nb = m.neighbor(center, static_cast<FaceDir>(d));
    ASSERT_TRUE(nb.has_value());
    // Neighbor relation is symmetric.
    EXPECT_EQ(m.neighbor(*nb, opposite(static_cast<FaceDir>(d))), center);
  }
  EXPECT_FALSE(m.neighbor(m.cell_at({0, 0, 0}), FaceDir::XLo).has_value());
  EXPECT_FALSE(m.neighbor(m.cell_at({2, 2, 2}), FaceDir::ZHi).has_value());
}

TEST(StructuredMesh, GeometryQuantities) {
  const StructuredMesh m({10, 10, 10}, {0.5, 1.0, 2.0}, {5, 5, 5});
  EXPECT_DOUBLE_EQ(m.cell_volume(), 1.0);
  EXPECT_DOUBLE_EQ(m.face_area(FaceDir::XLo), 2.0);
  EXPECT_DOUBLE_EQ(m.face_area(FaceDir::YHi), 1.0);
  EXPECT_DOUBLE_EQ(m.face_area(FaceDir::ZLo), 0.5);
  const Vec3 c = m.cell_center(m.cell_at({0, 0, 0}));
  EXPECT_DOUBLE_EQ(c.x, 5.25);
  EXPECT_DOUBLE_EQ(c.y, 5.5);
  EXPECT_DOUBLE_EQ(c.z, 6.0);
}

TEST(StructuredMesh, MaterialsSizeChecked) {
  StructuredMesh m({2, 2, 2}, {1, 1, 1});
  EXPECT_THROW(m.set_materials(std::vector<int>(3)), CheckError);
  m.set_materials(std::vector<int>(8, 5));
  EXPECT_EQ(m.material(CellId{7}), 5);
}

TEST(TetMesh, SingleTetBasics) {
  const TetMesh m({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
                  {{{0, 1, 2, 3}}});
  EXPECT_EQ(m.num_cells(), 1);
  EXPECT_EQ(m.num_faces(), 4);
  EXPECT_NEAR(m.cell_volume(CellId{0}), 1.0 / 6.0, 1e-15);
  for (const auto f : m.cell_faces(CellId{0})) {
    EXPECT_TRUE(m.face(f).is_boundary());
    EXPECT_FALSE(m.across(f, CellId{0}).valid());
  }
  EXPECT_TRUE(m.validate().empty());
}

TEST(TetMesh, NegativeOrientationIsFixed) {
  // Nodes ordered to give negative volume; constructor must reorient.
  const TetMesh m({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
                  {{{0, 2, 1, 3}}});
  EXPECT_GT(m.cell_volume(CellId{0}), 0.0);
  EXPECT_TRUE(m.validate().empty());
}

TEST(TetMesh, TwoTetsShareOneFace) {
  // Two tets sharing the (1,2,3) face.
  const TetMesh m({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}},
                  {{{0, 1, 2, 3}}, {{4, 1, 2, 3}}});
  EXPECT_EQ(m.num_faces(), 7);
  int interior = 0;
  for (std::int64_t f = 0; f < m.num_faces(); ++f)
    interior += m.face(f).is_boundary() ? 0 : 1;
  EXPECT_EQ(interior, 1);
  // across() is symmetric through the shared face.
  for (const auto f : m.cell_faces(CellId{0})) {
    if (!m.face(f).is_boundary()) {
      EXPECT_EQ(m.across(f, CellId{0}), CellId{1});
      EXPECT_EQ(m.across(f, CellId{1}), CellId{0});
      // Outward areas seen from the two sides are opposite.
      const Vec3 a0 = m.outward_area(f, CellId{0});
      const Vec3 a1 = m.outward_area(f, CellId{1});
      EXPECT_NEAR(norm(a0 + a1), 0.0, 1e-14);
    }
  }
  EXPECT_TRUE(m.validate().empty());
}

TEST(TetMesh, LatticeCubeIsConformingAndVolumeExact) {
  // A 3x3x3 lattice fully tetrahedralized: volume must equal the cube's.
  const TetMesh m = tetrahedralize_lattice(
      {3, 3, 3}, {1, 1, 1}, {0, 0, 0}, [](const Vec3&) { return true; },
      [](const Vec3&) { return 0; });
  EXPECT_EQ(m.num_cells(), 27 * 6);
  EXPECT_NEAR(m.total_volume(), 27.0, 1e-12);
  EXPECT_TRUE(m.validate().empty());
  // Conformity: interior quad faces are split consistently, so every
  // non-boundary face has exactly two incident tets (validate checks), and
  // boundary face count equals 2 triangles * 6 faces * 9 squares.
  std::int64_t boundary = 0;
  for (std::int64_t f = 0; f < m.num_faces(); ++f)
    boundary += m.face(f).is_boundary() ? 1 : 0;
  EXPECT_EQ(boundary, 2 * 6 * 9);
}

TEST(Generators, KobayashiMaterialsCoverRegions) {
  StructuredMesh m = make_kobayashi_mesh(20);  // 20^3, 5cm cells
  std::int64_t source = 0;
  std::int64_t void_cells = 0;
  std::int64_t shield = 0;
  for (std::int64_t c = 0; c < m.num_cells(); ++c) {
    switch (m.material(CellId{c})) {
      case kMatSource: ++source; break;
      case kMatVoid: ++void_cells; break;
      case kMatShield: ++shield; break;
      default: FAIL();
    }
  }
  // Source region is [0,10]^3 of [0,100]^3: 2x2x2 cells at 5cm.
  EXPECT_EQ(source, 8);
  EXPECT_GT(void_cells, 0);
  EXPECT_GT(shield, void_cells);
  EXPECT_EQ(source + void_cells + shield, m.num_cells());
}

TEST(Generators, BallMeshApproximatesSphere) {
  const TetMesh m = make_ball_mesh(12, 6.0);
  EXPECT_TRUE(m.validate().empty());
  // Volume within 20% of the sphere volume at this resolution.
  const double sphere = 4.0 / 3.0 * std::numbers::pi * 216.0;
  EXPECT_NEAR(m.total_volume(), sphere, 0.2 * sphere);
  // Has both materials.
  bool core = false;
  bool shield = false;
  for (std::int64_t c = 0; c < m.num_cells(); ++c) {
    core |= m.material(CellId{c}) == kMatCore;
    shield |= m.material(CellId{c}) == kMatShield;
  }
  EXPECT_TRUE(core);
  EXPECT_TRUE(shield);
}

TEST(Generators, ReactorMeshIsCylinder) {
  const TetMesh m = make_reactor_mesh(10, 5.0, 10.0);
  EXPECT_TRUE(m.validate().empty());
  const double cylinder = std::numbers::pi * 25.0 * 10.0;
  EXPECT_NEAR(m.total_volume(), cylinder, 0.25 * cylinder);
  bool core = false;
  bool refl = false;
  for (std::int64_t c = 0; c < m.num_cells(); ++c) {
    core |= m.material(CellId{c}) == kMatCore;
    refl |= m.material(CellId{c}) == kMatReflector;
  }
  EXPECT_TRUE(core);
  EXPECT_TRUE(refl);
}

TEST(Generators, EmptyPredicateThrows) {
  EXPECT_THROW(tetrahedralize_lattice({2, 2, 2}, {1, 1, 1}, {0, 0, 0},
                                      [](const Vec3&) { return false; },
                                      [](const Vec3&) { return 0; }),
               CheckError);
}

TEST(Refine, StructuredDoublesAndInheritsMaterials) {
  StructuredMesh m = make_kobayashi_mesh(10);
  const StructuredMesh fine = refine_uniform(m);
  EXPECT_EQ(fine.num_cells(), m.num_cells() * 8);
  EXPECT_EQ(fine.dims().i, 20);
  EXPECT_DOUBLE_EQ(fine.spacing().x, m.spacing().x / 2.0);
  for (std::int64_t c = 0; c < fine.num_cells(); ++c) {
    const Index3 p = fine.index_of(CellId{c});
    const CellId parent = m.cell_at({p.i / 2, p.j / 2, p.k / 2});
    EXPECT_EQ(fine.material(CellId{c}), m.material(parent));
  }
}

TEST(Refine, TetRefinementConservesVolume) {
  const TetMesh m = make_ball_mesh(6, 3.0);
  const TetMesh fine = refine_uniform(m);
  EXPECT_EQ(fine.num_cells(), m.num_cells() * 8);
  EXPECT_NEAR(fine.total_volume(), m.total_volume(),
              1e-9 * m.total_volume());
  EXPECT_TRUE(fine.validate().empty());
}

TEST(Refine, SingleTetChildrenTileParent) {
  const TetMesh m({{0, 0, 0}, {2, 0, 0}, {0, 2, 0}, {0, 0, 2}},
                  {{{0, 1, 2, 3}}});
  const TetMesh fine = refine_uniform(m);
  EXPECT_EQ(fine.num_cells(), 8);
  double sum = 0.0;
  for (std::int64_t c = 0; c < 8; ++c) sum += fine.cell_volume(CellId{c});
  EXPECT_NEAR(sum, m.cell_volume(CellId{0}), 1e-14);
  EXPECT_TRUE(fine.validate().empty());
}

}  // namespace
}  // namespace jsweep::mesh

// --- Deforming (jittered) meshes --------------------------------------------

namespace jsweep::mesh {
namespace {

TEST(JitteredMesh, ZeroJitterEqualsRegular) {
  const TetMesh a = make_ball_mesh(6, 3.0);
  const TetMesh b = make_jittered_ball_mesh(6, 3.0, 0.0);
  EXPECT_EQ(a.num_cells(), b.num_cells());
  EXPECT_NEAR(a.total_volume(), b.total_volume(), 1e-12 * a.total_volume());
}

TEST(JitteredMesh, ModerateJitterStaysValid) {
  const TetMesh m = make_jittered_ball_mesh(6, 3.0, 0.2, 7);
  EXPECT_TRUE(m.validate().empty());
  // Jitter moves interior nodes: volumes vary across cells.
  double vmin = 1e300;
  double vmax = 0.0;
  for (std::int64_t c = 0; c < m.num_cells(); ++c) {
    vmin = std::min(vmin, m.cell_volume(CellId{c}));
    vmax = std::max(vmax, m.cell_volume(CellId{c}));
  }
  EXPECT_GT(vmax / vmin, 1.5);
}

TEST(JitteredMesh, BoundaryNodesStayPut) {
  const TetMesh a = make_ball_mesh(6, 3.0);
  const TetMesh b = make_jittered_ball_mesh(6, 3.0, 0.2, 11);
  // Boundary node coordinates identical; total volume unchanged is too
  // strong, but the boundary surface is: compare boundary face areas sum.
  double area_a = 0.0;
  double area_b = 0.0;
  for (std::int64_t f = 0; f < a.num_faces(); ++f)
    if (a.face(f).is_boundary()) area_a += norm(a.face(f).area_vec);
  for (std::int64_t f = 0; f < b.num_faces(); ++f)
    if (b.face(f).is_boundary()) area_b += norm(b.face(f).area_vec);
  EXPECT_NEAR(area_a, area_b, 1e-9 * area_a);
}

}  // namespace
}  // namespace jsweep::mesh

// --- VTK output --------------------------------------------------------------

#include <sstream>

#include "mesh/vtk_output.hpp"

namespace jsweep::mesh {
namespace {

TEST(VtkOutput, StructuredHeaderAndFields) {
  const StructuredMesh m({2, 2, 2}, {0.5, 0.5, 0.5}, {1, 2, 3});
  const std::vector<double> phi(8, 1.25);
  std::ostringstream os;
  write_vtk(os, m, {{"phi", &phi}});
  const std::string s = os.str();
  EXPECT_NE(s.find("DATASET STRUCTURED_POINTS"), std::string::npos);
  EXPECT_NE(s.find("DIMENSIONS 3 3 3"), std::string::npos);
  EXPECT_NE(s.find("ORIGIN 1 2 3"), std::string::npos);
  EXPECT_NE(s.find("CELL_DATA 8"), std::string::npos);
  EXPECT_NE(s.find("SCALARS phi double 1"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
}

TEST(VtkOutput, TetMeshCellsAndTypes) {
  const TetMesh m({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
                  {{{0, 1, 2, 3}}});
  const std::vector<double> mat(1, 7.0);
  std::ostringstream os;
  write_vtk(os, m, {{"material", &mat}});
  const std::string s = os.str();
  EXPECT_NE(s.find("DATASET UNSTRUCTURED_GRID"), std::string::npos);
  EXPECT_NE(s.find("POINTS 4 double"), std::string::npos);
  EXPECT_NE(s.find("CELLS 1 5"), std::string::npos);
  EXPECT_NE(s.find("CELL_TYPES 1"), std::string::npos);
  EXPECT_NE(s.find("\n10\n"), std::string::npos);  // VTK_TETRA
}

TEST(VtkOutput, RejectsBadFields) {
  const StructuredMesh m({2, 2, 2}, {1, 1, 1});
  const std::vector<double> wrong_size(3, 0.0);
  std::ostringstream os;
  EXPECT_THROW(write_vtk(os, m, {{"phi", &wrong_size}}), CheckError);
  const std::vector<double> ok(8, 0.0);
  EXPECT_THROW(write_vtk(os, m, {{"bad name", &ok}}), CheckError);
  EXPECT_THROW(write_vtk(os, m, {{"null", nullptr}}), CheckError);
}

TEST(VtkOutput, FileRoundTrip) {
  const TetMesh m = make_ball_mesh(4, 2.0);
  std::vector<double> mats(static_cast<std::size_t>(m.num_cells()));
  for (std::int64_t c = 0; c < m.num_cells(); ++c)
    mats[static_cast<std::size_t>(c)] = m.material(CellId{c});
  const std::string path = "/tmp/jsweep_vtk_test.vtk";
  write_vtk_file(path, m, {{"material", &mats}});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "# vtk DataFile Version 3.0");
}

}  // namespace
}  // namespace jsweep::mesh
