// Plan/session lifecycle tests (ctest label `sweep`): the two-phase API
// must be a pure refactor of the one-shot solver. (a) Sessions sharing one
// immutable SweepPlan produce bit-identical fluxes to a fresh SweepSolver
// on structured-Kobayashi and twisted-cyclic meshes; (b) a plan built once
// and solved many times performs no task-graph construction or face-slot
// interning after the build (SweepTaskData creation counter + the global
// operator-new gate, as in test_flux_workspace); (c) threads solving
// concurrently against one shared plan match the serial result to 1e-12;
// (d) SweepService-batched solves reproduce standalone source iteration
// bitwise, including on cut meshes; (e) malformed plan inputs throw
// actionable CheckErrors at build time, not mid-solve.
//
// This binary owns the global operator new/delete replacement
// (support/alloc_counter.hpp) — include it from exactly one TU per binary.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/graph_partition.hpp"
#include "partition/patch_set.hpp"
#include "sn/serial_sweep.hpp"
#include "sn/source_iteration.hpp"
#include "support/alloc_counter.hpp"
#include "support/check.hpp"
#include "sweep/service.hpp"
#include "sweep/solver.hpp"

namespace jsweep {
namespace {

/// Non-uniform per-steradian source so scheduling bugs cannot cancel.
std::vector<double> test_source(std::int64_t cells) {
  std::vector<double> q(static_cast<std::size_t>(cells));
  for (std::int64_t c = 0; c < cells; ++c)
    q[static_cast<std::size_t>(c)] = 0.3 + 0.01 * static_cast<double>(c % 7);
  return q;
}

/// The Kobayashi structured scenario every test here reuses: mesh, cross
/// sections, kernel, partition and quadrature with matching lifetimes.
struct StructuredCase {
  mesh::StructuredMesh m;
  sn::CellXs xs;
  sn::StructuredDD disc;
  sn::Quadrature quad;
  partition::StructuredBlockLayout layout;
  partition::PatchSet ps;
  std::vector<RankId> owner;

  explicit StructuredCase(int n = 8)
      : m(mesh::make_kobayashi_mesh(n)),
        xs(expand(sn::MaterialTable::kobayashi(), m.materials(),
                  m.num_cells())),
        disc(m, xs),
        quad(sn::Quadrature::level_symmetric(2)),
        layout(m.dims(), {n / 2, n / 2, n / 2}),
        ps(partition::block_partition(layout), layout.num_patches()),
        owner(partition::assign_contiguous(layout.num_patches(), 1)) {}
};

/// The twisted-column tet scenario: genuinely cyclic per-direction task
/// graphs, so plans carry cycle cuts and sessions carry lagged values.
struct CyclicCase {
  mesh::TetMesh m;
  sn::CellXs xs;
  sn::TetStep disc;
  sn::Quadrature quad;
  partition::CsrGraph cg;
  partition::PatchSet ps;
  std::vector<RankId> owner;

  CyclicCase()
      : m(mesh::make_twisted_column_mesh()),
        xs(expand(sn::MaterialTable::ball(), m.materials(), m.num_cells())),
        disc(m, xs),
        quad(sn::Quadrature::level_symmetric(2)),
        cg(partition::cell_graph(m)),
        ps(partition::partition_graph(cg, 4), 4, &cg),
        owner(partition::assign_contiguous(4, 1)) {}
};

// ---------------------------------------------------------------------------
// (a) Shared-plan sessions are bitwise identical to the legacy facade.
// ---------------------------------------------------------------------------

TEST(PlanSharing, TwoSessionsMatchFreshSolverStructured) {
  const StructuredCase tc;
  const auto q = test_source(tc.m.num_cells());
  constexpr int kSweeps = 3;

  comm::Cluster::run(1, [&](comm::Context& ctx) {
    sweep::SolverConfig legacy_config;
    legacy_config.num_workers = 2;
    sweep::SweepSolver solver(ctx, tc.m, tc.ps, tc.owner, tc.disc, tc.quad,
                              legacy_config);
    std::vector<std::vector<double>> reference;
    for (int k = 0; k < kSweeps; ++k) reference.push_back(solver.sweep(q));

    const auto plan = sweep::SweepPlan::build(ctx, tc.m, tc.ps, tc.owner,
                                              tc.disc, tc.quad);
    sweep::SweepSession s1(ctx, plan);
    sweep::SweepSession s2(ctx, plan);
    for (int k = 0; k < kSweeps; ++k) {
      // Interleave so the sessions demonstrably don't share mutable state.
      const auto phi1 = s1.sweep(q);
      const auto phi2 = s2.sweep(q);
      EXPECT_EQ(phi1, reference[static_cast<std::size_t>(k)])
          << "session 1, sweep " << k;
      EXPECT_EQ(phi2, reference[static_cast<std::size_t>(k)])
          << "session 2, sweep " << k;
    }
  });
}

TEST(PlanSharing, TwoSessionsMatchFreshSolverTwistedCyclic) {
  const CyclicCase tc;
  const auto q = test_source(tc.m.num_cells());
  constexpr int kSweeps = 3;  // lag state evolves sweep to sweep

  comm::Cluster::run(1, [&](comm::Context& ctx) {
    sweep::SolverConfig legacy_config;
    legacy_config.num_workers = 2;
    legacy_config.cycle_policy = sweep::CyclePolicy::Lag;
    sweep::SweepSolver solver(ctx, tc.m, tc.ps, tc.owner, tc.disc, tc.quad,
                              legacy_config);
    std::vector<std::vector<double>> reference;
    for (int k = 0; k < kSweeps; ++k) reference.push_back(solver.sweep(q));

    sweep::PlanConfig pc;
    pc.cycle_policy = sweep::CyclePolicy::Lag;
    const auto plan = sweep::SweepPlan::build(ctx, tc.m, tc.ps, tc.owner,
                                              tc.disc, tc.quad, pc);
    ASSERT_TRUE(plan->has_cycles());
    // Each session copies the plan's zeroed lagged template, so both start
    // from the vacuum iterate and must track the fresh solver sweep by
    // sweep even as their (independent) lagged stores evolve.
    sweep::SweepSession s1(ctx, plan);
    sweep::SweepSession s2(ctx, plan);
    for (int k = 0; k < kSweeps; ++k) {
      const auto phi1 = s1.sweep(q);
      const auto phi2 = s2.sweep(q);
      EXPECT_EQ(phi1, reference[static_cast<std::size_t>(k)])
          << "session 1, sweep " << k;
      EXPECT_EQ(phi2, reference[static_cast<std::size_t>(k)])
          << "session 2, sweep " << k;
    }
  });
}

// ---------------------------------------------------------------------------
// (b) Plan reuse: no task-graph / slot memory after the first solve.
// ---------------------------------------------------------------------------

TEST(PlanReuse, HundredSolvesRebuildNothing) {
  const StructuredCase tc;
  const auto q = test_source(tc.m.num_cells());

  comm::Cluster::run(1, [&](comm::Context& ctx) {
    const std::int64_t data_before = sweep::SweepTaskData::total_created();
    const std::int64_t allocs_before = support::allocation_count();
    const auto plan = sweep::SweepPlan::build(ctx, tc.m, tc.ps, tc.owner,
                                              tc.disc, tc.quad);
    const std::int64_t build_allocs =
        support::allocation_count() - allocs_before;
    const std::int64_t data_after_build =
        sweep::SweepTaskData::total_created();
    ASSERT_GT(data_after_build, data_before)
        << "the build must intern the task data";

    sweep::SweepSession session(ctx, plan);
    EXPECT_EQ(sweep::SweepTaskData::total_created(), data_after_build)
        << "session construction must not build task graphs";

    auto phi_first = session.sweep(q);  // warm: pools, buffers, workspaces
    const std::int64_t steady_start = support::allocation_count();
    std::vector<double> phi_last;
    for (int k = 0; k < 100; ++k) phi_last = session.sweep(q);
    const std::int64_t steady_allocs =
        support::allocation_count() - steady_start;

    // The structural invariant: 100 further solves create zero task data —
    // no dependence-graph construction, no face-slot interning.
    EXPECT_EQ(sweep::SweepTaskData::total_created(), data_after_build)
        << "steady-state solves must not rebuild task graphs or re-intern "
           "slots";
    // And the allocation gate: a steady-state solve's residual allocations
    // (engine worker spawn, stream shuffling) must be a small fraction of
    // one plan build. This is what rebuilding-per-solve would forfeit.
    EXPECT_LT(steady_allocs / 100, build_allocs / 10)
        << "per-solve allocations (" << steady_allocs / 100
        << ") should be well below one plan build (" << build_allocs << ")";
    EXPECT_EQ(phi_last, phi_first);
  });
}

// ---------------------------------------------------------------------------
// (c) Concurrent sessions on one shared plan.
// ---------------------------------------------------------------------------

TEST(PlanConcurrency, ThreadsShareOnePlan) {
  const StructuredCase tc;
  const auto q = test_source(tc.m.num_cells());
  const auto serial = sn::serial_sweep(tc.disc, tc.quad, q);

  // Build ONE plan, then solve against it from N threads at once, each
  // thread on its own single-rank cluster (comm::Cluster state is
  // per-instance, so independent clusters coexist). The plan is deeply
  // const after build — any cross-thread flake here is a mutation bug.
  std::shared_ptr<const sweep::SweepPlan> plan;
  comm::Cluster::run(1, [&](comm::Context& ctx) {
    plan = sweep::SweepPlan::build(ctx, tc.m, tc.ps, tc.owner, tc.disc,
                                   tc.quad);
  });
  ASSERT_NE(plan, nullptr);

  constexpr int kThreads = 4;
  constexpr int kSweepsPerThread = 3;
  std::vector<std::vector<double>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      comm::Cluster::run(1, [&](comm::Context& ctx) {
        sweep::SweepSession session(ctx, plan);
        std::vector<double> phi;
        for (int k = 0; k < kSweepsPerThread; ++k) phi = session.sweep(q);
        results[static_cast<std::size_t>(t)] = std::move(phi);
      });
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    const auto& phi = results[static_cast<std::size_t>(t)];
    ASSERT_EQ(phi.size(), serial.size()) << "thread " << t;
    for (std::size_t c = 0; c < serial.size(); ++c)
      ASSERT_NEAR(phi[c], serial[c], 1e-12)
          << "thread " << t << " cell " << c;
  }
}

// ---------------------------------------------------------------------------
// (d) Service batching reproduces standalone source iteration bitwise.
// ---------------------------------------------------------------------------

TEST(ServiceBatching, BatchedSolvesMatchStandalone) {
  const StructuredCase tc;
  constexpr int kRequests = 5;

  // Request k varies the external source (the classic many-RHS workload —
  // same geometry and materials, different driving terms).
  std::vector<sn::CellXs> request_xs(kRequests, tc.xs);
  for (int k = 0; k < kRequests; ++k)
    for (auto& s : request_xs[static_cast<std::size_t>(k)].source)
      s *= 1.0 + 0.25 * static_cast<double>(k);
  const sn::SourceIterationOptions options{1e-6, 100, false};

  comm::Cluster::run(1, [&](comm::Context& ctx) {
    const auto plan = sweep::SweepPlan::build(ctx, tc.m, tc.ps, tc.owner,
                                              tc.disc, tc.quad);

    // Standalone references: one fresh session per request.
    std::vector<sn::SourceIterationResult> reference;
    for (int k = 0; k < kRequests; ++k) {
      sweep::SweepSession session(ctx, plan);
      reference.push_back(sn::source_iteration(
          request_xs[static_cast<std::size_t>(k)], session.as_operator(),
          options));
      ASSERT_TRUE(reference.back().converged) << "request " << k;
    }

    // The same requests through the service, fused 3 + 2.
    sweep::ServiceConfig sc;
    sc.max_batch = 3;
    sweep::SweepService service(ctx, sc);
    for (int k = 0; k < kRequests; ++k) {
      sweep::SolveRequest request;
      request.plan = plan;
      request.xs = &request_xs[static_cast<std::size_t>(k)];
      request.options = options;
      service.enqueue(request);
    }
    const auto responses = service.drain();

    ASSERT_EQ(responses.size(), static_cast<std::size_t>(kRequests));
    for (int k = 0; k < kRequests; ++k) {
      const auto& got = responses[static_cast<std::size_t>(k)];
      const auto& want = reference[static_cast<std::size_t>(k)];
      EXPECT_EQ(got.result.phi, want.phi) << "request " << k;
      EXPECT_EQ(got.result.iterations, want.iterations) << "request " << k;
      EXPECT_EQ(got.result.error, want.error) << "request " << k;
      EXPECT_TRUE(got.result.converged) << "request " << k;
    }
    EXPECT_EQ(responses[0].lanes_in_batch, 3);
    EXPECT_EQ(responses[4].lanes_in_batch, 2);
    EXPECT_EQ(service.stats().requests, kRequests);
    EXPECT_EQ(service.stats().batches, 2);
    // Batching must amortize: fusing lanes into shared engine runs takes
    // strictly fewer runs than the per-request sweep count.
    EXPECT_LT(service.stats().engine_runs, service.stats().sweeps);
  });
}

TEST(ServiceBatching, BatchedSolvesMatchStandaloneOnCutMesh) {
  const CyclicCase tc;
  constexpr int kRequests = 2;

  std::vector<sn::CellXs> request_xs(kRequests, tc.xs);
  for (auto& s : request_xs[1].source) s *= 1.5;
  const sn::SourceIterationOptions options{1e-6, 200, false};

  comm::Cluster::run(1, [&](comm::Context& ctx) {
    sweep::PlanConfig pc;
    pc.cycle_policy = sweep::CyclePolicy::Lag;
    const auto plan = sweep::SweepPlan::build(ctx, tc.m, tc.ps, tc.owner,
                                              tc.disc, tc.quad, pc);
    ASSERT_TRUE(plan->has_cycles());

    std::vector<sn::SourceIterationResult> reference;
    for (int k = 0; k < kRequests; ++k) {
      sweep::SweepSession session(ctx, plan);  // default max_lag_sweeps = 1
      reference.push_back(sn::source_iteration(
          request_xs[static_cast<std::size_t>(k)], session.as_operator(),
          options));
      ASSERT_TRUE(reference.back().converged) << "request " << k;
    }

    sweep::SweepService service(ctx);  // default max_lag_sweeps = 1
    for (int k = 0; k < kRequests; ++k) {
      sweep::SolveRequest request;
      request.plan = plan;
      request.xs = &request_xs[static_cast<std::size_t>(k)];
      request.options = options;
      service.enqueue(request);
    }
    const auto responses = service.drain();

    // With the default single lag sweep the batched lanes commit exactly
    // the old iterates a standalone session would — bitwise identical.
    ASSERT_EQ(responses.size(), static_cast<std::size_t>(kRequests));
    for (int k = 0; k < kRequests; ++k) {
      const auto& got = responses[static_cast<std::size_t>(k)];
      const auto& want = reference[static_cast<std::size_t>(k)];
      EXPECT_EQ(got.result.phi, want.phi) << "request " << k;
      EXPECT_EQ(got.result.iterations, want.iterations) << "request " << k;
      EXPECT_TRUE(got.result.converged) << "request " << k;
    }
  });
}

// ---------------------------------------------------------------------------
// (e) Plan-invariant validation: malformed inputs throw at build time.
// ---------------------------------------------------------------------------

TEST(PlanValidation, RejectsMalformedInputsUpFront) {
  const StructuredCase tc;

  comm::Cluster::run(1, [&](comm::Context& ctx) {
    {
      sweep::PlanConfig pc;
      pc.cluster_grain = 0;
      EXPECT_THROW(sweep::SweepPlan::build(ctx, tc.m, tc.ps, tc.owner,
                                           tc.disc, tc.quad, pc),
                   CheckError)
          << "cluster_grain = 0 must be rejected";
    }
    {
      std::vector<RankId> short_owner(tc.owner.begin(), tc.owner.end() - 1);
      EXPECT_THROW(sweep::SweepPlan::build(ctx, tc.m, tc.ps,
                                           std::move(short_owner), tc.disc,
                                           tc.quad),
                   CheckError)
          << "owner table shorter than the patch count must be rejected";
    }
    {
      auto bad_owner = tc.owner;
      bad_owner.back() = RankId{ctx.size()};  // one past the last rank
      EXPECT_THROW(sweep::SweepPlan::build(ctx, tc.m, tc.ps,
                                           std::move(bad_owner), tc.disc,
                                           tc.quad),
                   CheckError)
          << "out-of-range owner ranks must be rejected";
    }
    {
      // A malformed service request fails at enqueue, not mid-drain.
      sweep::SweepService service(ctx);
      sweep::SolveRequest request;  // null plan
      EXPECT_THROW(service.enqueue(request), CheckError);
      const auto plan = sweep::SweepPlan::build(ctx, tc.m, tc.ps, tc.owner,
                                                tc.disc, tc.quad);
      request.plan = plan;  // ... but still no cross sections
      EXPECT_THROW(service.enqueue(request), CheckError);
    }
  });
}

TEST(PlanValidation, CellXsValidateIsActionable) {
  sn::CellXs xs;
  xs.sigma_t = {0.5, 0.5};
  xs.sigma_s = {0.1, 0.1};
  xs.source = {1.0, 1.0};
  EXPECT_NO_THROW(xs.validate());

  auto mismatched = xs;
  mismatched.sigma_s.pop_back();
  EXPECT_THROW(mismatched.validate(), CheckError);

  auto negative = xs;
  negative.sigma_t[1] = -0.25;
  EXPECT_THROW(negative.validate(), CheckError);

  auto non_finite = xs;
  non_finite.source[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(non_finite.validate(), CheckError);
}

}  // namespace
}  // namespace jsweep
