// Tests for the digraph utilities, sweep-DAG construction, priority
// strategies and graph coarsening (Theorem 1).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/coarsen.hpp"
#include "graph/digraph.hpp"
#include "graph/priority.hpp"
#include "graph/scc.hpp"
#include "graph/sweep_dag.hpp"
#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "sn/quadrature.hpp"
#include "partition/graph_partition.hpp"
#include "partition/sfc.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace jsweep::graph {
namespace {

using Edge = std::pair<std::int32_t, std::int32_t>;
using mesh::normalized;

TEST(Digraph, DegreesAndIteration) {
  const Digraph g(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.out_degree(3), 0);
  const auto indeg = g.in_degrees();
  EXPECT_EQ(indeg[0], 0);
  EXPECT_EQ(indeg[3], 2);
}

TEST(Digraph, TopologicalOrderValid) {
  const Digraph g(6, {{0, 2}, {1, 2}, {2, 3}, {3, 4}, {3, 5}});
  const auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  std::vector<int> position(6);
  for (std::size_t i = 0; i < order->size(); ++i)
    position[static_cast<std::size_t>((*order)[i])] = static_cast<int>(i);
  for (std::int32_t v = 0; v < 6; ++v)
    g.for_out(v, [&](std::int32_t u) {
      EXPECT_LT(position[static_cast<std::size_t>(v)],
                position[static_cast<std::size_t>(u)]);
    });
}

TEST(Digraph, DetectsCycle) {
  const Digraph g(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_FALSE(g.is_acyclic());
  const auto cycle = g.find_cycle();
  ASSERT_GE(cycle.size(), 3u);
  // The returned sequence really is a cycle.
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const auto v = cycle[i];
    const auto u = cycle[(i + 1) % cycle.size()];
    bool has_edge = false;
    g.for_out(v, [&](std::int32_t w) { has_edge |= (w == u); });
    EXPECT_TRUE(has_edge) << "missing edge " << v << "→" << u;
  }
}

TEST(Digraph, AcyclicHasNoCycle) {
  const Digraph g(4, {{0, 1}, {1, 2}, {0, 3}});
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_TRUE(g.find_cycle().empty());
}

TEST(Digraph, ReversedSwapsDegrees) {
  const Digraph g(3, {{0, 1}, {0, 2}});
  const Digraph r = g.reversed();
  EXPECT_EQ(r.out_degree(0), 0);
  EXPECT_EQ(r.out_degree(1), 1);
  EXPECT_EQ(r.out_degree(2), 1);
}

TEST(Priority, BfsLevels) {
  //   0 → 1 → 2
  //   3 ──────^
  const Digraph g(4, {{0, 1}, {1, 2}, {3, 2}});
  const auto level = bfs_levels(g);
  EXPECT_EQ(level[0], 0);
  EXPECT_EQ(level[3], 0);
  EXPECT_EQ(level[1], 1);
  EXPECT_EQ(level[2], 2);  // longest distance from a source
}

TEST(Priority, LdcpDepths) {
  const Digraph g(5, {{0, 1}, {1, 2}, {2, 3}, {0, 4}});
  const auto depth = ldcp_depths(g);
  EXPECT_EQ(depth[0], 3);  // 0→1→2→3
  EXPECT_EQ(depth[1], 2);
  EXPECT_EQ(depth[3], 0);
  EXPECT_EQ(depth[4], 0);
}

TEST(Priority, LdcpRequiresAcyclic) {
  const Digraph g(2, {{0, 1}, {1, 0}});
  EXPECT_THROW(ldcp_depths(g), CheckError);
}

TEST(Priority, ForwardDistance) {
  const Digraph g(5, {{0, 1}, {1, 2}, {3, 4}});
  std::vector<char> targets(5, 0);
  targets[2] = 1;
  const auto dist = forward_distance_to(g, targets);
  EXPECT_EQ(dist[2], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[0], 2);
  EXPECT_EQ(dist[3], std::numeric_limits<std::int32_t>::max());
}

TEST(Priority, StrategyNamesRoundTrip) {
  for (const auto s :
       {PriorityStrategy::None, PriorityStrategy::BFS, PriorityStrategy::LDCP,
        PriorityStrategy::SLBD})
    EXPECT_EQ(priority_from_string(to_string(s)), s);
  EXPECT_THROW((void)priority_from_string("bogus"), CheckError);
}

// ---------------------------------------------------------------------------
// Sweep DAG construction
// ---------------------------------------------------------------------------

TEST(SweepDag, StructuredGlobalIsAcyclicAllOctants) {
  const mesh::StructuredMesh m({5, 4, 3}, {1, 1, 1});
  for (const double sx : {1.0, -1.0})
    for (const double sy : {1.0, -1.0})
      for (const double sz : {1.0, -1.0}) {
        const mesh::Vec3 omega =
            normalized({0.48 * sx, 0.62 * sy, 0.62 * sz});
        const Digraph g = build_global_cell_digraph(m, omega);
        EXPECT_TRUE(g.is_acyclic());
        // Interior cell count check: every interior face is one edge.
        EXPECT_EQ(g.num_edges(), 4LL * 4 * 3 + 5 * 3 * 3 + 5 * 4 * 2);
      }
}

TEST(SweepDag, TetBallAcyclicForSampleDirections) {
  const mesh::TetMesh m = mesh::make_ball_mesh(6, 3.0);
  for (const auto& omega :
       {mesh::Vec3{0.57735, 0.57735, 0.57735}, mesh::Vec3{-0.9, 0.3, 0.3},
        mesh::Vec3{0.2, -0.5, 0.84}}) {
    const Digraph g = build_global_cell_digraph(m, normalized(omega));
    EXPECT_TRUE(g.is_acyclic());
  }
}

TEST(SweepDag, PatchTaskGraphCountsConsistent) {
  const mesh::StructuredMesh m({6, 6, 1}, {1, 1, 1});
  const auto part = partition::partition_sfc({6, 6, 1}, 4,
                                             partition::Curve::Morton);
  const partition::CsrGraph cg = partition::cell_graph(m);
  const partition::PatchSet ps(part, 4, &cg);
  const mesh::Vec3 omega = normalized({0.6, 0.8, 0.0});

  std::int64_t local_edges = 0;
  std::int64_t remote_out = 0;
  std::int64_t remote_in = 0;
  for (int p = 0; p < 4; ++p) {
    const auto g =
        build_patch_task_graph(m, ps, PatchId{p}, omega, AngleId{0});
    EXPECT_EQ(g.num_vertices,
              static_cast<std::int32_t>(ps.cells(PatchId{p}).size()));
    local_edges += static_cast<std::int64_t>(g.local_edges.size());
    remote_out += static_cast<std::int64_t>(g.remote_out.size());
    remote_in += static_cast<std::int64_t>(g.remote_in.size());
    // Initial counts equal local in-degree + remote in-degree.
    std::vector<std::int32_t> expect(
        static_cast<std::size_t>(g.num_vertices), 0);
    for (const auto& e : g.local_edges)
      ++expect[static_cast<std::size_t>(e.v)];
    for (const auto& e : g.remote_in) ++expect[static_cast<std::size_t>(e.v)];
    EXPECT_EQ(g.initial_counts, expect);
    // Local sub-DAG must be acyclic (induced subgraph of a DAG).
    EXPECT_TRUE(g.local.is_acyclic());
  }
  // Every remote-out edge is some patch's remote-in edge.
  EXPECT_EQ(remote_out, remote_in);
  // Total directed edges = directed interior faces with Ω·n > 0. With
  // Ωz = 0 on a 2-D-like mesh: x-faces 5*6 + y-faces 6*5 = 60.
  EXPECT_EQ(local_edges + remote_out, 60);
}

TEST(SweepDag, RemoteEdgesMatchAcrossPatches) {
  const mesh::TetMesh m = mesh::make_ball_mesh(6, 3.0);
  const partition::CsrGraph cg = partition::cell_graph(m);
  const auto part = partition::partition_graph(cg, 3);
  const partition::PatchSet ps(part, 3, &cg);
  const mesh::Vec3 omega = normalized({0.3, 0.5, 0.81});

  std::vector<PatchTaskGraph> graphs;
  for (int p = 0; p < 3; ++p)
    graphs.push_back(
        build_patch_task_graph(m, ps, PatchId{p}, omega, AngleId{0}));

  // Collect (src_cell, face, dst_cell) across patches from both views.
  std::set<std::tuple<std::int64_t, std::int64_t, std::int64_t>> outs;
  std::set<std::tuple<std::int64_t, std::int64_t, std::int64_t>> ins;
  for (const auto& g : graphs) {
    const auto& cells = ps.cells(g.patch);
    for (const auto& e : g.remote_out)
      outs.insert({cells[static_cast<std::size_t>(e.u)].value(), e.face,
                   e.dst_cell});
    for (const auto& e : g.remote_in)
      ins.insert({e.src_cell, e.face,
                  cells[static_cast<std::size_t>(e.v)].value()});
  }
  EXPECT_EQ(outs, ins);
}

TEST(SweepDag, PatchDigraphMatchesTaskGraphs) {
  const mesh::StructuredMesh m({8, 8, 2}, {1, 1, 1});
  const auto part =
      partition::partition_sfc({8, 8, 2}, 4, partition::Curve::Hilbert);
  const partition::CsrGraph cg = partition::cell_graph(m);
  const partition::PatchSet ps(part, 4, &cg);
  const mesh::Vec3 omega = normalized({0.5, 0.7, 0.5});

  std::vector<PatchTaskGraph> graphs;
  for (int p = 0; p < 4; ++p)
    graphs.push_back(
        build_patch_task_graph(m, ps, PatchId{p}, omega, AngleId{0}));
  const Digraph from_graphs = build_patch_level_digraph(graphs, 4);
  const Digraph from_mesh = build_patch_digraph(m, ps, omega);

  // Same edge sets.
  const auto edges_of = [](const Digraph& g) {
    std::set<Edge> edges;
    for (std::int32_t v = 0; v < g.num_vertices(); ++v)
      g.for_out(v, [&](std::int32_t u) { edges.insert({v, u}); });
    return edges;
  };
  EXPECT_EQ(edges_of(from_graphs), edges_of(from_mesh));
}

// ---------------------------------------------------------------------------
// Coarsening (Theorem 1)
// ---------------------------------------------------------------------------

/// Random DAG with vertices labelled in topological order.
Digraph random_dag(Rng& rng, std::int32_t n, double edge_prob) {
  std::vector<Edge> edges;
  for (std::int32_t u = 0; u < n; ++u)
    for (std::int32_t v = u + 1; v < n; ++v)
      if (rng.chance(edge_prob)) edges.push_back({u, v});
  return Digraph(n, edges);
}

/// Cluster assignment consistent with execution order: cut the topological
/// id space into random runs.
std::vector<std::int32_t> random_clustering(Rng& rng, std::int32_t n,
                                            std::int32_t& num_clusters) {
  std::vector<std::int32_t> cluster(static_cast<std::size_t>(n));
  std::int32_t current = 0;
  for (std::int32_t v = 0; v < n; ++v) {
    cluster[static_cast<std::size_t>(v)] = current;
    if (rng.chance(0.3)) ++current;
  }
  num_clusters = current + 1;
  return cluster;
}

TEST(Coarsen, Theorem1CoarsenedGraphAcyclic) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const auto n = static_cast<std::int32_t>(10 + rng.below(40));
    const Digraph fine = random_dag(rng, n, 0.15);
    std::int32_t num_clusters = 0;
    const auto cluster = random_clustering(rng, n, num_clusters);
    const CoarsenedGraph cg = coarsen(fine, cluster, num_clusters);
    EXPECT_TRUE(cg.coarse.is_acyclic()) << "trial " << trial;
  }
}

TEST(Coarsen, MembersPartitionVertices) {
  Rng rng(7);
  const Digraph fine = random_dag(rng, 30, 0.2);
  std::int32_t num_clusters = 0;
  const auto cluster = random_clustering(rng, 30, num_clusters);
  const CoarsenedGraph cg = coarsen(fine, cluster, num_clusters);
  std::int64_t total = 0;
  for (const auto& m : cg.members) total += static_cast<std::int64_t>(m.size());
  EXPECT_EQ(total, 30);
}

TEST(Coarsen, EdgePropertiesAggregateFineEdges) {
  // 0,1 -> cluster 0; 2,3 -> cluster 1; edges 0→2, 1→2, 1→3, 0→1 (internal).
  const Digraph fine(4, {{0, 2}, {1, 2}, {1, 3}, {0, 1}});
  const CoarsenedGraph cg = coarsen(fine, {0, 0, 1, 1}, 2);
  ASSERT_EQ(cg.coarse_edges.size(), 1u);
  EXPECT_EQ(cg.coarse_edges[0], (Edge{0, 1}));
  EXPECT_EQ(cg.edge_members[0].size(), 3u);  // internal 0→1 absorbed
  EXPECT_EQ(cg.coarse.num_edges(), 1);
}

TEST(Coarsen, RejectsBackwardClustering) {
  const Digraph fine(2, {{0, 1}});
  EXPECT_THROW(coarsen(fine, {1, 0}, 2), CheckError);
}

}  // namespace
}  // namespace jsweep::graph

// --- Deforming meshes and the sweep DAG -------------------------------------

namespace jsweep::graph {
namespace {

TEST(SweepDag, JitteredMeshSweepableOrCycleReported) {
  // A moderately deformed mesh: for each direction either the global DAG
  // is acyclic, or the cycle detector produces a genuine cycle — never a
  // silent wrong answer.
  const mesh::TetMesh m = mesh::make_jittered_ball_mesh(6, 3.0, 0.2, 3);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  int acyclic = 0;
  for (const auto& ang : quad.ordinates()) {
    const Digraph g = build_global_cell_digraph(m, ang.dir);
    const auto order = g.topological_order();
    if (order.has_value()) {
      ++acyclic;
    } else {
      const auto cycle = g.find_cycle();
      ASSERT_GE(cycle.size(), 2u);
      for (std::size_t i = 0; i < cycle.size(); ++i) {
        bool has_edge = false;
        g.for_out(cycle[i], [&](std::int32_t w) {
          has_edge |= (w == cycle[(i + 1) % cycle.size()]);
        });
        EXPECT_TRUE(has_edge);
      }
    }
  }
  // Moderate jitter keeps most (usually all) directions sweepable.
  EXPECT_GE(acyclic, quad.num_angles() / 2);
}

// ---------------------------------------------------------------------------
// SCC + cycle breaking
// ---------------------------------------------------------------------------

TEST(Scc, HandPickedComponents) {
  // Two 2-cycles bridged by a DAG edge plus an isolated vertex.
  const Digraph g(5, {{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}});
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 3);
  EXPECT_EQ(scc.component_of[0], scc.component_of[1]);
  EXPECT_EQ(scc.component_of[2], scc.component_of[3]);
  EXPECT_NE(scc.component_of[0], scc.component_of[2]);
  // Reverse-topological ids: {0,1} feeds {2,3}, so its id is larger.
  EXPECT_GT(scc.component_of[0], scc.component_of[2]);
  const Digraph cond = condensation(g, scc);
  EXPECT_EQ(cond.num_vertices(), 3);
  EXPECT_TRUE(cond.is_acyclic());
}

TEST(Scc, BreakCyclesSimpleLoop) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 0}, {2, 3}};
  const CycleBreak cb = break_cycles(4, edges);
  EXPECT_EQ(cb.stats.edges_cut, 1);
  EXPECT_EQ(cb.stats.cyclic_components, 1);
  EXPECT_EQ(cb.stats.largest_component, 3);
  // Exactly one of the triangle's edges is cut; the bridge is kept.
  EXPECT_EQ(cb.cut[3], 0);
}

TEST(Scc, AcyclicInputUntouched) {
  const std::vector<Edge> edges{{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  const CycleBreak cb = break_cycles(4, edges);
  EXPECT_EQ(cb.stats.edges_cut, 0);
  EXPECT_EQ(cb.stats.cyclic_components, 0);
  EXPECT_FALSE(cb.stats.any());
}

/// Brute-force SCC via transitive closure (Floyd–Warshall reachability):
/// u, v share a component iff u reaches v and v reaches u.
std::vector<std::int32_t> brute_force_components(
    std::int32_t n, const std::vector<Edge>& edges) {
  std::vector<std::vector<char>> reach(
      static_cast<std::size_t>(n),
      std::vector<char>(static_cast<std::size_t>(n), 0));
  for (std::int32_t v = 0; v < n; ++v)
    reach[static_cast<std::size_t>(v)][static_cast<std::size_t>(v)] = 1;
  for (const auto& [u, v] : edges)
    reach[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] = 1;
  for (std::int32_t k = 0; k < n; ++k)
    for (std::int32_t i = 0; i < n; ++i)
      for (std::int32_t j = 0; j < n; ++j)
        if (reach[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] &&
            reach[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)])
          reach[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = 1;
  std::vector<std::int32_t> comp(static_cast<std::size_t>(n), -1);
  std::int32_t next = 0;
  for (std::int32_t v = 0; v < n; ++v) {
    if (comp[static_cast<std::size_t>(v)] >= 0) continue;
    comp[static_cast<std::size_t>(v)] = next;
    for (std::int32_t u = v + 1; u < n; ++u)
      if (reach[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)] &&
          reach[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)])
        comp[static_cast<std::size_t>(u)] = next;
    ++next;
  }
  return comp;
}

/// Seeded random edge list over n vertices (occasional self-loops and
/// parallel edges included on purpose).
std::vector<Edge> random_edges(Rng& rng, std::int32_t n, double density) {
  std::vector<Edge> edges;
  const auto target = static_cast<std::int64_t>(density * n * n);
  for (std::int64_t e = 0; e < target; ++e)
    edges.emplace_back(
        static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(n))),
        static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(n))));
  return edges;
}

TEST(SccProperty, MatchesBruteForceOnSmallRandomDigraphs) {
  // Tarjan vs transitive-closure components on ~200 random graphs.
  Rng rng(20260731);
  for (int trial = 0; trial < 200; ++trial) {
    const auto n = static_cast<std::int32_t>(2 + rng.below(9));
    const auto edges = random_edges(rng, n, rng.uniform(0.05, 0.5));
    const SccResult scc = strongly_connected_components(Digraph(n, edges));
    const auto brute = brute_force_components(n, edges);
    ASSERT_EQ(scc.component_of.size(), brute.size());
    // Same partition: component ids agree up to relabeling.
    for (std::int32_t u = 0; u < n; ++u)
      for (std::int32_t v = u + 1; v < n; ++v)
        ASSERT_EQ(scc.component_of[static_cast<std::size_t>(u)] ==
                      scc.component_of[static_cast<std::size_t>(v)],
                  brute[static_cast<std::size_t>(u)] ==
                      brute[static_cast<std::size_t>(v)])
            << "trial " << trial << " vertices " << u << "," << v;
  }
}

TEST(SccProperty, RandomDigraphCycleBreaking) {
  // The cycle-breaking invariants on ~300 random digraphs of mixed size
  // and density:
  //   1. node coverage: every vertex gets exactly one component, sizes sum
  //      to n, and ids stay within [0, num_components);
  //   2. the condensation is acyclic;
  //   3. the kept (non-cut) edges form an acyclic graph;
  //   4. every cut edge lies strictly inside an SCC.
  Rng rng(42424242);
  for (int trial = 0; trial < 300; ++trial) {
    const auto n = static_cast<std::int32_t>(1 + rng.below(60));
    const auto edges = random_edges(rng, n, rng.uniform(0.01, 0.2));
    const Digraph g(n, edges);

    const SccResult scc = strongly_connected_components(g);
    std::int64_t covered = 0;
    for (const auto c : scc.component_of) {
      ASSERT_GE(c, 0);
      ASSERT_LT(c, scc.num_components);
      ++covered;
    }
    ASSERT_EQ(covered, n);
    const auto sizes = scc.component_sizes();
    std::int64_t total = 0;
    for (const auto s : sizes) {
      ASSERT_GE(s, 1);
      total += s;
    }
    ASSERT_EQ(total, n);

    ASSERT_TRUE(condensation(g, scc).is_acyclic()) << "trial " << trial;

    const CycleBreak cb = break_cycles(n, edges);
    std::vector<Edge> kept;
    std::int64_t cut_count = 0;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (cb.cut[e]) {
        ++cut_count;
        // Property 4: a cut edge's endpoints are mutually reachable.
        ASSERT_EQ(scc.component_of[static_cast<std::size_t>(edges[e].first)],
                  scc.component_of[static_cast<std::size_t>(edges[e].second)])
            << "trial " << trial << " cut edge " << edges[e].first << "→"
            << edges[e].second << " crosses components";
      } else {
        kept.push_back(edges[e]);
      }
    }
    ASSERT_EQ(cut_count, cb.stats.edges_cut);
    ASSERT_TRUE(Digraph(n, kept).is_acyclic()) << "trial " << trial;
    // Acyclic input ⇔ nothing cut.
    ASSERT_EQ(cb.stats.edges_cut == 0, g.is_acyclic());
  }
}

TEST(SccProperty, LdcpPriorityTolerantOfCycles) {
  // patch_priorities with LDCP must survive a cyclic patch graph (falls
  // back to condensation depths) and still rank strictly-upwind components
  // higher.
  const Digraph g(4, {{0, 1}, {1, 0}, {1, 2}, {2, 3}});
  const auto prio = patch_priorities(PriorityStrategy::LDCP, g);
  EXPECT_GT(prio[0], prio[2]);
  EXPECT_GT(prio[2], prio[3]);
  EXPECT_DOUBLE_EQ(prio[0], prio[1]);  // same component, same depth
}

TEST(SweepDag, CyclicGeneratorsAreActuallyCyclic) {
  // The advertised cyclic meshes must produce cycles under the quadrature
  // the solver tests use — and the cut must make every direction acyclic.
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  {
    const mesh::TetMesh m = mesh::make_twisted_column_mesh();
    int cyclic = 0;
    for (const auto& ang : quad.ordinates()) {
      const CycleCut cut = compute_cycle_cut(m, ang.dir);
      if (cut.empty()) continue;
      ++cyclic;
      EXPECT_TRUE(
          build_global_cell_digraph(m, ang.dir, &cut).is_acyclic());
      EXPECT_EQ(static_cast<std::int64_t>(cut.lagged_faces.size()),
                cut.stats.edges_cut);
    }
    // The default twisted column is cyclic in every S2 direction.
    EXPECT_EQ(cyclic, quad.num_angles());
  }
  {
    const mesh::TetMesh m = mesh::make_swirled_ball_mesh(6, 3.0);
    int cyclic = 0;
    for (const auto& ang : quad.ordinates()) {
      const CycleCut cut = compute_cycle_cut(m, ang.dir);
      if (cut.empty()) continue;
      ++cyclic;
      EXPECT_TRUE(
          build_global_cell_digraph(m, ang.dir, &cut).is_acyclic());
    }
    EXPECT_GE(cyclic, 2);  // randomized mode: most directions in practice
  }
  {
    // Control: the straight generators stay acyclic everywhere.
    const mesh::TetMesh m = mesh::make_ball_mesh(5, 3.0);
    for (const auto& ang : quad.ordinates())
      EXPECT_TRUE(compute_cycle_cut(m, ang.dir).empty());
  }
}

TEST(SweepDag, CutTaskGraphsExcludeLaggedDependencies) {
  // Building patch task graphs against a cut: lagged edges disappear from
  // counts/local digraph, land in the lagged lists, and the union of
  // normal + lagged edges equals the uncut graph's edges.
  const mesh::TetMesh m = mesh::make_twisted_column_mesh();
  const partition::CsrGraph cg = partition::cell_graph(m);
  const auto part = partition::partition_graph(cg, 4);
  const partition::PatchSet ps(part, 4, &cg);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const mesh::Vec3 omega = quad.angle(0).dir;
  const CycleCut cut = compute_cycle_cut(m, omega);
  ASSERT_FALSE(cut.empty());

  std::int64_t lagged_seen = 0;
  for (int p = 0; p < 4; ++p) {
    const PatchTaskGraph uncut =
        build_patch_task_graph(m, ps, PatchId{p}, omega, AngleId{0});
    const PatchTaskGraph with_cut =
        build_patch_task_graph(m, ps, PatchId{p}, omega, AngleId{0}, &cut);
    EXPECT_EQ(uncut.local_edges.size(), with_cut.local_edges.size() +
                                            with_cut.lagged_local.size());
    EXPECT_EQ(uncut.remote_in.size(),
              with_cut.remote_in.size() + with_cut.lagged_in.size());
    EXPECT_EQ(uncut.remote_out.size(),
              with_cut.remote_out.size() + with_cut.lagged_out.size());
    EXPECT_TRUE(with_cut.local.is_acyclic());
    lagged_seen += static_cast<std::int64_t>(with_cut.lagged_local.size());
    for (const auto& e : with_cut.lagged_local)
      EXPECT_TRUE(cut.contains(e.face));
    for (const auto& e : with_cut.lagged_in)
      EXPECT_TRUE(cut.contains(e.face));
    // Counts must reflect only the kept dependencies.
    std::vector<std::int32_t> expect_counts(
        static_cast<std::size_t>(with_cut.num_vertices), 0);
    for (const auto& e : with_cut.local_edges)
      ++expect_counts[static_cast<std::size_t>(e.v)];
    for (const auto& e : with_cut.remote_in)
      ++expect_counts[static_cast<std::size_t>(e.v)];
    EXPECT_EQ(with_cut.initial_counts, expect_counts);
    // Cross-patch lagged edges show up once as lagged_out (upwind side)
    // and once as lagged_in (downwind side).
    lagged_seen += static_cast<std::int64_t>(with_cut.lagged_out.size());
  }
  // Every cut face appears somewhere: as a lagged local edge (once) or as
  // a lagged_out (the matching lagged_in is the same face).
  EXPECT_EQ(lagged_seen, cut.stats.edges_cut);
}

}  // namespace
}  // namespace jsweep::graph
