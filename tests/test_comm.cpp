// Tests for the in-process message-passing substrate: point-to-point
// semantics, collectives, serialization and termination detection.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "comm/cluster.hpp"
#include "comm/serialize.hpp"
#include "comm/termination.hpp"
#include "core/stream.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace jsweep::comm {
namespace {

Bytes bytes_of(std::int64_t v) {
  ByteWriter w;
  w.write(v);
  return w.take();
}

std::int64_t value_of(const Message& m) {
  ByteReader r(m.payload);
  return r.read<std::int64_t>();
}

TEST(Serialize, RoundTripScalars) {
  ByteWriter w;
  w.write(std::int32_t{-7});
  w.write(3.25);
  w.write(std::uint8_t{200});
  const Bytes b = w.take();
  ByteReader r(b);
  EXPECT_EQ(r.read<std::int32_t>(), -7);
  EXPECT_EQ(r.read<double>(), 3.25);
  EXPECT_EQ(r.read<std::uint8_t>(), 200);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, RoundTripVectorsAndStrings) {
  ByteWriter w;
  w.write_vector(std::vector<double>{1.0, 2.0, 3.0});
  w.write_string("jsweep");
  w.write_vector(std::vector<std::int16_t>{});
  const Bytes b = w.take();
  ByteReader r(b);
  EXPECT_EQ(r.read_vector<double>(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(r.read_string(), "jsweep");
  EXPECT_TRUE(r.read_vector<std::int16_t>().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, OverrunThrows) {
  ByteWriter w;
  w.write(std::int32_t{1});
  const Bytes b = w.take();
  ByteReader r(b);
  EXPECT_THROW(r.read<std::int64_t>(), CheckError);
}

TEST(Serialize, EmptyBufferAndEmptyString) {
  const Bytes empty;
  ByteReader r(empty);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.position(), 0u);
  EXPECT_THROW(r.read<std::uint8_t>(), CheckError);

  ByteWriter w;
  w.write_string("");
  const Bytes b = w.take();
  ByteReader r2(b);
  EXPECT_EQ(r2.read_string(), "");
  EXPECT_TRUE(r2.exhausted());
}

TEST(Serialize, LargePayloadRoundTrip) {
  // Multi-megabyte vector survives intact (catches size-type truncation).
  Rng rng(1234);
  std::vector<std::uint64_t> big(1 << 18);
  for (auto& v : big) v = rng();
  ByteWriter w;
  w.write_vector(big);
  const Bytes b = w.take();
  EXPECT_EQ(b.size(), sizeof(std::uint64_t) + big.size() * sizeof(big[0]));
  ByteReader r(b);
  EXPECT_EQ(r.read_vector<std::uint64_t>(), big);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, TruncatedVectorHeaderThrows) {
  // A length prefix promising more bytes than the buffer holds must throw,
  // not read out of bounds.
  ByteWriter w;
  w.write(std::uint64_t{1000});  // claims 1000 doubles, provides none
  const Bytes b = w.take();
  ByteReader r(b);
  EXPECT_THROW(r.read_vector<double>(), CheckError);
}

// ---------------------------------------------------------------------------
// Stream batch (pack_streams/unpack_streams) round-trips. These are the
// wire format of every engine message; they were previously exercised only
// indirectly through engine runs.
// ---------------------------------------------------------------------------

core::Stream make_stream(std::int32_t src_patch, std::int32_t dst_patch,
                         std::int32_t task, std::size_t payload_bytes) {
  core::Stream s;
  s.src = {PatchId{src_patch}, TaskTag{task}};
  s.dst = {PatchId{dst_patch}, TaskTag{task}};
  s.data.resize(payload_bytes);
  for (std::size_t i = 0; i < payload_bytes; ++i)
    s.data[i] = static_cast<std::byte>((i * 31 + payload_bytes) & 0xff);
  return s;
}

TEST(StreamCodec, EmptyBatchRoundTrip) {
  const Bytes wire = core::pack_streams({});
  EXPECT_TRUE(core::unpack_streams(wire).empty());
}

TEST(StreamCodec, EmptyPayloadStreamRoundTrip) {
  // A stream may carry no payload at all (pure activation signal).
  const auto back = core::unpack_streams(
      core::pack_streams({make_stream(3, 9, 2, 0)}));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].src, (ProgramKey{PatchId{3}, TaskTag{2}}));
  EXPECT_EQ(back[0].dst, (ProgramKey{PatchId{9}, TaskTag{2}}));
  EXPECT_TRUE(back[0].data.empty());
}

TEST(StreamCodec, LargePayloadRoundTrip) {
  const auto original = make_stream(1, 2, 0, std::size_t{1} << 21);  // 2 MiB
  const auto back =
      core::unpack_streams(core::pack_streams({original}));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].data, original.data);
}

TEST(StreamCodec, MixedBatchRoundTrip) {
  // One wire message batching streams of wildly different sizes and keys —
  // exactly what flush_remote() produces.
  std::vector<core::Stream> batch;
  batch.push_back(make_stream(0, 1, 0, 0));
  batch.push_back(make_stream(5, 2, 7, 1));
  batch.push_back(make_stream(3, 4, 3, 4096));
  batch.push_back(make_stream(8, 8, 0, 13));
  const auto back = core::unpack_streams(core::pack_streams(batch));
  ASSERT_EQ(back.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(back[i].src, batch[i].src) << "stream " << i;
    EXPECT_EQ(back[i].dst, batch[i].dst) << "stream " << i;
    EXPECT_EQ(back[i].data, batch[i].data) << "stream " << i;
  }
}

TEST(StreamCodec, TruncatedWireThrows) {
  Bytes wire = core::pack_streams({make_stream(0, 1, 0, 64)});
  wire.resize(wire.size() / 2);
  EXPECT_THROW(core::unpack_streams(wire), CheckError);
}

TEST(Cluster, PingPong) {
  Cluster::run(2, [](Context& ctx) {
    if (ctx.rank().value() == 0) {
      ctx.send(RankId{1}, kTagUser, bytes_of(42));
      const Message reply = ctx.recv();
      EXPECT_EQ(value_of(reply), 43);
      EXPECT_EQ(reply.src, RankId{1});
    } else {
      const Message m = ctx.recv();
      ctx.send(m.src, kTagUser, bytes_of(value_of(m) + 1));
    }
  });
}

TEST(Cluster, PerSenderFifoOrder) {
  constexpr int kMessages = 200;
  Cluster::run(2, [](Context& ctx) {
    if (ctx.rank().value() == 0) {
      for (std::int64_t i = 0; i < kMessages; ++i)
        ctx.send(RankId{1}, kTagUser, bytes_of(i));
    } else {
      for (std::int64_t i = 0; i < kMessages; ++i) {
        const Message m = ctx.recv();
        EXPECT_EQ(value_of(m), i);
      }
    }
  });
}

TEST(Cluster, AllToAllDelivery) {
  constexpr int kRanks = 6;
  Cluster::run(kRanks, [](Context& ctx) {
    for (int r = 0; r < ctx.size(); ++r) {
      if (r == ctx.rank().value()) continue;
      ctx.send(RankId{r}, kTagUser, bytes_of(ctx.rank().value()));
    }
    std::int64_t sum = 0;
    for (int i = 0; i < ctx.size() - 1; ++i) sum += value_of(ctx.recv());
    // Everyone else's rank id exactly once.
    EXPECT_EQ(sum, kRanks * (kRanks - 1) / 2 - ctx.rank().value());
  });
}

TEST(Cluster, TryRecvNonBlocking) {
  Cluster::run(2, [](Context& ctx) {
    if (ctx.rank().value() == 0) {
      EXPECT_FALSE(ctx.try_recv().has_value());
      ctx.barrier();          // let rank 1 send
      ctx.barrier();          // wait for the send to land
      const auto m = ctx.try_recv();
      ASSERT_TRUE(m.has_value());
      EXPECT_EQ(value_of(*m), 5);
    } else {
      ctx.barrier();
      ctx.send(RankId{0}, kTagUser, bytes_of(5));
      ctx.barrier();
    }
  });
}

TEST(Cluster, AllreduceSumAndMax) {
  Cluster::run(5, [](Context& ctx) {
    const auto me = static_cast<std::int64_t>(ctx.rank().value());
    EXPECT_EQ(ctx.allreduce_sum(me), 0 + 1 + 2 + 3 + 4);
    EXPECT_EQ(ctx.allreduce_max(me), 4);
    EXPECT_DOUBLE_EQ(ctx.allreduce_sum(0.5), 2.5);
    EXPECT_DOUBLE_EQ(ctx.allreduce_max(static_cast<double>(me)), 4.0);
    EXPECT_DOUBLE_EQ(ctx.allreduce_min(static_cast<double>(me)), 0.0);
    // Back-to-back reductions must not interfere.
    EXPECT_EQ(ctx.allreduce_sum(std::int64_t{1}), 5);
  });
}

TEST(Cluster, AllreduceVectorSum) {
  Cluster::run(4, [](Context& ctx) {
    std::vector<double> v(8);
    std::iota(v.begin(), v.end(), static_cast<double>(ctx.rank().value()));
    ctx.allreduce_sum(v);
    for (std::size_t i = 0; i < v.size(); ++i)
      EXPECT_DOUBLE_EQ(v[i], 4.0 * static_cast<double>(i) + 6.0);
  });
}

TEST(Cluster, TrafficCounters) {
  Cluster cluster(2);
  std::thread t0([&] {
    auto& ctx = cluster.context(RankId{0});
    ctx.send(RankId{1}, kTagUser, bytes_of(1));
    ctx.send(RankId{1}, kTagTerminate, {});  // control, not counted as basic
    ctx.barrier();
  });
  std::thread t1([&] {
    auto& ctx = cluster.context(RankId{1});
    (void)ctx.recv();
    (void)ctx.recv();
    ctx.barrier();
  });
  t0.join();
  t1.join();
  const auto total = cluster.total_traffic();
  EXPECT_EQ(total.basic_sent, 1);
  EXPECT_EQ(total.basic_received, 1);
  EXPECT_EQ(total.control_sent, 1);
  EXPECT_EQ(total.bytes_sent, static_cast<std::int64_t>(sizeof(std::int64_t)));
}

TEST(Cluster, RankExceptionPropagates) {
  EXPECT_THROW(Cluster::run(2,
                            [](Context& ctx) {
                              if (ctx.rank().value() == 1)
                                throw std::runtime_error("rank 1 died");
                            }),
               std::runtime_error);
}

TEST(Cluster, SingleRankWorks) {
  Cluster::run(1, [](Context& ctx) {
    EXPECT_EQ(ctx.size(), 1);
    ctx.send(RankId{0}, kTagUser, bytes_of(9));  // self-send
    EXPECT_EQ(value_of(ctx.recv()), 9);
    EXPECT_EQ(ctx.allreduce_sum(std::int64_t{3}), 3);
  });
}

// ---------------------------------------------------------------------------
// Safra termination detection
// ---------------------------------------------------------------------------

/// Drives a toy data-driven computation: each rank forwards a decrementing
/// hop counter to a random peer; when all counters die out, the system is
/// globally quiet and Safra must detect it (and must not detect it before).
void run_safra_workload(int ranks, int initial_tokens, int hops) {
  std::atomic<std::int64_t> total_hops{0};
  Cluster::run(ranks, [&](Context& ctx) {
    SafraDetector detector(ctx);
    Rng rng(1000 + static_cast<std::uint64_t>(ctx.rank().value()));

    // Seed: rank 0 launches `initial_tokens` wandering messages.
    if (ctx.rank().value() == 0) {
      for (int i = 0; i < initial_tokens; ++i) {
        const auto dest = static_cast<int>(rng.below(
            static_cast<std::uint64_t>(ctx.size())));
        detector.note_basic_send();
        ctx.send(RankId{dest}, kTagUser, bytes_of(hops));
      }
    }

    while (!detector.terminated()) {
      if (auto msg = ctx.try_recv()) {
        switch (msg->tag) {
          case kTagUser: {
            detector.note_basic_recv();
            total_hops.fetch_add(1, std::memory_order_relaxed);
            const std::int64_t remaining = value_of(*msg) - 1;
            if (remaining > 0) {
              const auto dest = static_cast<int>(rng.below(
                  static_cast<std::uint64_t>(ctx.size())));
              detector.note_basic_send();
              ctx.send(RankId{dest}, kTagUser, bytes_of(remaining));
            }
            break;
          }
          case kTagToken:
            detector.on_token(*msg);
            break;
          case kTagTerminate:
            detector.on_terminate();
            break;
          default:
            FAIL() << "unexpected tag " << msg->tag;
        }
        continue;
      }
      detector.on_idle();
      if (!detector.terminated())
        ctx.wait_message(std::chrono::microseconds(50));
    }
  });
  EXPECT_EQ(total_hops.load(), static_cast<std::int64_t>(initial_tokens) * hops);
}

TEST(Safra, DetectsQuiescenceTwoRanks) { run_safra_workload(2, 4, 10); }

TEST(Safra, DetectsQuiescenceManyRanks) { run_safra_workload(7, 16, 25); }

TEST(Safra, ImmediateTerminationNoWork) { run_safra_workload(5, 0, 0); }

TEST(Safra, SingleRankTerminatesInstantly) {
  Cluster::run(1, [](Context& ctx) {
    SafraDetector detector(ctx);
    detector.on_idle();
    EXPECT_TRUE(detector.terminated());
  });
}

TEST(WorkloadTracker, CommitRetire) {
  WorkloadTracker t(10);
  EXPECT_FALSE(t.locally_done());
  t.retire(4);
  t.commit(2);
  EXPECT_EQ(t.remaining(), 8);
  t.retire(8);
  EXPECT_TRUE(t.locally_done());
}

}  // namespace
}  // namespace jsweep::comm
