// Cross-engine equivalence suite (ctest label `equivalence`): on a shared
// matrix of scenarios — structured, unstructured, AMR-refined, and cyclic
// meshes — the data-driven engine, the BSP engine, the coarsened replay
// path and the serial reference must produce identical scalar fluxes to
// 1e-12, sweep after sweep. The kernels are deterministic and execution
// order along the (cut) DAG changes no operand, so any divergence is a
// scheduling or cycle-handling bug, not roundoff.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "comm/cluster.hpp"
#include "mesh/amr.hpp"
#include "mesh/generators.hpp"
#include "mesh/refine.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/graph_partition.hpp"
#include "partition/patch_set.hpp"
#include "sn/boundary.hpp"
#include "sn/multigroup.hpp"
#include "sn/serial_sweep.hpp"
#include "sn/source_iteration.hpp"
#include "support/rng.hpp"
#include "sweep/solver.hpp"

namespace jsweep {
namespace {

constexpr double kTol = 1e-12;
constexpr int kSweeps = 3;  ///< successive sweeps compared (lag state evolves)

/// Non-uniform per-steradian source so asymmetric scheduling bugs cannot
/// cancel out.
std::vector<double> test_source(std::int64_t cells) {
  std::vector<double> q(static_cast<std::size_t>(cells));
  for (std::int64_t c = 0; c < cells; ++c)
    q[static_cast<std::size_t>(c)] = 0.3 + 0.01 * static_cast<double>(c % 7);
  return q;
}

/// Run `kSweeps` successive sweeps of one engine configuration and return
/// rank 0's fluxes.
template <class Mesh, class Disc>
std::vector<std::vector<double>> run_engine(
    const Mesh& m, const partition::PatchSet& ps, const Disc& disc,
    const sn::Quadrature& quad, const std::vector<double>& q, int ranks,
    sweep::EngineKind kind, bool coarsened, sweep::CyclePolicy policy) {
  std::vector<std::vector<double>> phis;
  comm::Cluster::run(ranks, [&](comm::Context& ctx) {
    sweep::SolverConfig config;
    config.engine = kind;
    config.num_workers = 2;
    config.cluster_grain = 8;  // small batches → heavy partial computation
    config.use_coarsened_graph = coarsened;
    config.cycle_policy = policy;
    const auto owner =
        partition::assign_contiguous(ps.num_patches(), ctx.size());
    sweep::SweepSolver solver(ctx, m, ps, owner, disc, quad, config);
    std::vector<std::vector<double>> local;
    for (int k = 0; k < kSweeps; ++k) local.push_back(solver.sweep(q));
    if (ctx.rank().value() == 0) phis = std::move(local);
  });
  return phis;
}

void expect_matches(const std::vector<std::vector<double>>& reference,
                    const std::vector<std::vector<double>>& actual,
                    const char* scenario, const char* engine) {
  ASSERT_EQ(reference.size(), actual.size()) << scenario << "/" << engine;
  for (std::size_t k = 0; k < reference.size(); ++k) {
    ASSERT_EQ(reference[k].size(), actual[k].size())
        << scenario << "/" << engine << " sweep " << k;
    for (std::size_t c = 0; c < reference[k].size(); ++c)
      ASSERT_NEAR(reference[k][c], actual[k][c], kTol)
          << scenario << "/" << engine << " sweep " << k << " cell " << c;
  }
}

/// The full engine matrix against a per-sweep reference.
template <class Mesh, class Disc>
void expect_all_engines_match(
    const char* scenario, const Mesh& m, const partition::PatchSet& ps,
    const Disc& disc, const sn::Quadrature& quad,
    const std::vector<std::vector<double>>& reference,
    sweep::CyclePolicy policy = sweep::CyclePolicy::Error) {
  const auto q = test_source(m.num_cells());
  expect_matches(reference,
                 run_engine(m, ps, disc, quad, q, 2,
                            sweep::EngineKind::DataDriven, false, policy),
                 scenario, "data-driven");
  expect_matches(reference,
                 run_engine(m, ps, disc, quad, q, 2, sweep::EngineKind::Bsp,
                            false, policy),
                 scenario, "bsp");
  // Coarsened replay: sweep 1 runs (and records) the fine graph, sweeps
  // 2+ replay on the coarsened graph — all must match the reference.
  expect_matches(reference,
                 run_engine(m, ps, disc, quad, q, 2,
                            sweep::EngineKind::DataDriven, true, policy),
                 scenario, "data-driven-coarsened");
}

/// Serial reference for acyclic scenarios: stateless, so every sweep of a
/// fixed source is identical.
template <class Disc>
std::vector<std::vector<double>> serial_reference(const Disc& disc,
                                                  const sn::Quadrature& quad,
                                                  std::int64_t cells) {
  const auto q = test_source(cells);
  const auto phi = sn::serial_sweep(disc, quad, q);
  return std::vector<std::vector<double>>(static_cast<std::size_t>(kSweeps),
                                          phi);
}

TEST(Equivalence, StructuredUniformCube) {
  const mesh::StructuredMesh m = mesh::make_cube_mesh(6, 6.0);
  sn::CellXs xs;
  const auto n = static_cast<std::size_t>(m.num_cells());
  xs.sigma_t.assign(n, 0.8);
  xs.sigma_s.assign(n, 0.3);
  xs.source.assign(n, 1.0);
  const sn::StructuredDD disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const partition::StructuredBlockLayout layout(m.dims(), {3, 3, 3});
  const partition::CsrGraph cg = partition::cell_graph(m);
  const partition::PatchSet ps(partition::block_partition(layout),
                               layout.num_patches(), &cg);
  expect_all_engines_match("structured-cube", m, ps, disc, quad,
                           serial_reference(disc, quad, m.num_cells()));
}

TEST(Equivalence, StructuredKobayashi) {
  const mesh::StructuredMesh m = mesh::make_kobayashi_mesh(8);
  const sn::CellXs xs =
      expand(sn::MaterialTable::kobayashi(), m.materials(), m.num_cells());
  const sn::StructuredDD disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);
  const partition::StructuredBlockLayout layout(m.dims(), {4, 4, 4});
  const partition::CsrGraph cg = partition::cell_graph(m);
  const partition::PatchSet ps(partition::block_partition(layout),
                               layout.num_patches(), &cg);
  expect_all_engines_match("kobayashi", m, ps, disc, quad,
                           serial_reference(disc, quad, m.num_cells()));
}

TEST(Equivalence, UnstructuredBall) {
  const mesh::TetMesh m = mesh::make_ball_mesh(5, 3.0);
  const sn::CellXs xs =
      expand(sn::MaterialTable::ball(), m.materials(), m.num_cells());
  const sn::TetStep disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const partition::CsrGraph cg = partition::cell_graph(m);
  const auto part = partition::partition_graph(cg, 5);
  const partition::PatchSet ps(part, 5, &cg);
  expect_all_engines_match("ball", m, ps, disc, quad,
                           serial_reference(disc, quad, m.num_cells()));
}

TEST(Equivalence, AmrRefinedBox) {
  // AMR path: refine the Kobayashi source/duct region one level and sweep
  // the resulting fine box as its own decomposed mesh.
  const mesh::StructuredMesh coarse = mesh::make_kobayashi_mesh(8);
  const mesh::AmrHierarchy amr(
      coarse,
      [&](CellId c) { return coarse.material(c) != mesh::kMatShield; }, 2);
  ASSERT_FALSE(amr.fine_boxes().empty());
  const mesh::StructuredMesh m = amr.box_mesh(0);
  const sn::CellXs xs =
      expand(sn::MaterialTable::kobayashi(), m.materials(), m.num_cells());
  const sn::StructuredDD disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const mesh::Index3 d = m.dims();
  const partition::StructuredBlockLayout layout(
      d, {std::max(2, d.i / 2), std::max(2, d.j / 2), std::max(2, d.k / 2)});
  const partition::CsrGraph cg = partition::cell_graph(m);
  const partition::PatchSet ps(partition::block_partition(layout),
                               layout.num_patches(), &cg);
  expect_all_engines_match("amr-box", m, ps, disc, quad,
                           serial_reference(disc, quad, m.num_cells()));
}

TEST(Equivalence, RefinedTetMesh) {
  const mesh::TetMesh coarse = mesh::make_ball_mesh(4, 2.0);
  const mesh::TetMesh m = mesh::refine_uniform(coarse);
  const sn::CellXs xs =
      expand(sn::MaterialTable::ball(), m.materials(), m.num_cells());
  const sn::TetStep disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const partition::CsrGraph cg = partition::cell_graph(m);
  const auto part = partition::partition_graph(cg, 6);
  const partition::PatchSet ps(part, 6, &cg);
  expect_all_engines_match("refined-tet", m, ps, disc, quad,
                           serial_reference(disc, quad, m.num_cells()));
}

/// Cyclic reference: the stateful SerialSweeper computes the same cut and
/// lag semantics as the solver, so its successive sweeps are the ground
/// truth for the evolving lagged state.
std::vector<std::vector<double>> lagged_reference(const sn::TetStep& disc,
                                                  const sn::Quadrature& quad,
                                                  std::int64_t cells) {
  sn::SerialSweeper sweeper(disc, quad);
  EXPECT_GT(sweeper.cycle_stats().edges_cut, 0);
  const auto q = test_source(cells);
  std::vector<std::vector<double>> phis;
  for (int k = 0; k < kSweeps; ++k) phis.push_back(sweeper.sweep(q));
  return phis;
}

TEST(Equivalence, CyclicTwistedColumn) {
  const mesh::TetMesh m = mesh::make_twisted_column_mesh();
  const sn::CellXs xs =
      expand(sn::MaterialTable::ball(), m.materials(), m.num_cells());
  const sn::TetStep disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const partition::CsrGraph cg = partition::cell_graph(m);
  const auto part = partition::partition_graph(cg, 6);
  const partition::PatchSet ps(part, 6, &cg);
  expect_all_engines_match("twisted", m, ps, disc, quad,
                           lagged_reference(disc, quad, m.num_cells()),
                           sweep::CyclePolicy::Lag);
}

TEST(Equivalence, CyclicSwirledBall) {
  const mesh::TetMesh m = mesh::make_swirled_ball_mesh(5, 3.0);
  const sn::CellXs xs =
      expand(sn::MaterialTable::ball(), m.materials(), m.num_cells());
  const sn::TetStep disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const partition::CsrGraph cg = partition::cell_graph(m);
  const auto part = partition::partition_graph(cg, 4);
  const partition::PatchSet ps(part, 4, &cg);
  expect_all_engines_match("swirled", m, ps, disc, quad,
                           lagged_reference(disc, quad, m.num_cells()),
                           sweep::CyclePolicy::Lag);
}

TEST(Equivalence, CyclicSourceIterationConverges) {
  // Acceptance: a provably-cyclic mesh that would deadlock the engines
  // pre-cut completes under CyclePolicy::Lag and source iteration
  // converges on both engines to the same answer.
  const mesh::TetMesh m = mesh::make_twisted_column_mesh();
  const sn::CellXs xs =
      expand(sn::MaterialTable::ball(), m.materials(), m.num_cells());
  const sn::TetStep disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const partition::CsrGraph cg = partition::cell_graph(m);
  const auto part = partition::partition_graph(cg, 6);
  const partition::PatchSet ps(part, 6, &cg);

  std::vector<double> phi_dd;
  std::vector<double> phi_bsp;
  for (const auto kind :
       {sweep::EngineKind::DataDriven, sweep::EngineKind::Bsp}) {
    comm::Cluster::run(2, [&](comm::Context& ctx) {
      sweep::SolverConfig config;
      config.engine = kind;
      config.num_workers = 2;
      config.cycle_policy = sweep::CyclePolicy::Lag;
      const auto owner =
          partition::assign_contiguous(ps.num_patches(), ctx.size());
      sweep::SweepSolver solver(ctx, m, ps, owner, disc, quad, config);
      const auto result =
          sn::source_iteration(xs, solver.as_operator(), {1e-6, 200, false});
      if (ctx.rank().value() == 0) {
        EXPECT_TRUE(result.converged);
        EXPECT_GT(solver.stats().cyclic_angles, 0);
        EXPECT_GT(solver.stats().cycles.edges_cut, 0);
        (kind == sweep::EngineKind::DataDriven ? phi_dd : phi_bsp) =
            result.phi;
      }
    });
  }
  ASSERT_EQ(phi_dd.size(), phi_bsp.size());
  for (std::size_t c = 0; c < phi_dd.size(); ++c)
    ASSERT_NEAR(phi_dd[c], phi_bsp[c], kTol);
  // And the lag-converged answer agrees with the cycle-aware serial
  // reference run through the same source iteration.
  sn::SerialSweeper sweeper(disc, quad);
  const auto serial = sn::source_iteration(
      xs, [&](const std::vector<double>& q) { return sweeper.sweep(q); },
      {1e-6, 200, false});
  EXPECT_TRUE(serial.converged);
  for (std::size_t c = 0; c < phi_dd.size(); ++c)
    ASSERT_NEAR(phi_dd[c], serial.phi[c], kTol);
}

TEST(Equivalence, InnerLagSweepsTightenTheOperator) {
  // max_lag_sweeps > 1 must reduce the lagged-face residual within one
  // sweep() call and converge source iteration in no more outer
  // iterations than plain lagging.
  const mesh::TetMesh m = mesh::make_twisted_column_mesh();
  const sn::CellXs xs =
      expand(sn::MaterialTable::ball(), m.materials(), m.num_cells());
  const sn::TetStep disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const partition::CsrGraph cg = partition::cell_graph(m);
  const auto part = partition::partition_graph(cg, 4);
  const partition::PatchSet ps(part, 4, &cg);

  const auto solve = [&](int lag_sweeps, double* residual) {
    int iterations = 0;
    comm::Cluster::run(1, [&](comm::Context& ctx) {
      sweep::SolverConfig config;
      config.num_workers = 2;
      config.cycle_policy = sweep::CyclePolicy::Lag;
      config.max_lag_sweeps = lag_sweeps;
      config.lag_tolerance = 1e-13;
      const auto owner = partition::assign_contiguous(ps.num_patches(), 1);
      sweep::SweepSolver solver(ctx, m, ps, owner, disc, quad, config);
      const auto result =
          sn::source_iteration(xs, solver.as_operator(), {1e-8, 300, false});
      EXPECT_TRUE(result.converged);
      iterations = result.iterations;
      *residual = solver.stats().last_lag_residual;
      if (lag_sweeps > 1) {
        EXPECT_GT(solver.stats().last_lag_sweeps, 1);
      }
    });
    return iterations;
  };
  double res_plain = 0.0;
  double res_inner = 0.0;
  const int iters_plain = solve(1, &res_plain);
  const int iters_inner = solve(6, &res_inner);
  EXPECT_LE(res_inner, res_plain);
  EXPECT_LE(iters_inner, iters_plain);
}

// ---------------------------------------------------------------------------
// Multigroup (G = 4): the engine matrix must agree with the serial
// sweep-pass reference on a full multigroup solve — data-driven pipelined,
// data-driven group-barriered, BSP pipelined and coarsened pipelined.
// ---------------------------------------------------------------------------

template <class Mesh, class Disc>
std::vector<std::vector<double>> run_multigroup_engine(
    const Mesh& m, const partition::PatchSet& ps, const Disc& disc,
    const sn::Quadrature& quad, const sn::MultigroupXs& xs, int ranks,
    sweep::EngineKind kind, bool pipelined, bool coarsened,
    const sn::MultigroupOptions& opts, int set_width = 1) {
  std::vector<std::vector<double>> phi;
  comm::Cluster::run(ranks, [&](comm::Context& ctx) {
    sweep::SolverConfig config;
    config.engine = kind;
    config.num_workers = 2;
    config.cluster_grain = 8;  // small batches → heavy partial computation
    config.multigroup = &xs;
    config.group_pipelining = pipelined;
    config.group_set_width = set_width;
    config.use_coarsened_graph =
        coarsened && kind == sweep::EngineKind::DataDriven;
    const auto owner =
        partition::assign_contiguous(ps.num_patches(), ctx.size());
    sweep::SweepSolver solver(ctx, m, ps, owner, disc, quad, config);
    const auto result = solver.solve_multigroup(opts);
    EXPECT_TRUE(result.converged);
    if (ctx.rank().value() == 0) phi = result.phi;
  });
  return phi;
}

template <class Mesh, class Disc, class DiscFactory>
void expect_multigroup_engines_match(const char* scenario, const Mesh& m,
                                     const partition::PatchSet& ps,
                                     const Disc& disc,
                                     const sn::Quadrature& quad,
                                     const sn::MultigroupXs& xs,
                                     const DiscFactory& make_group_disc) {
  // Loose pass tolerance: the point is that every engine configuration
  // reproduces the reference's *iterate sequence* (and therefore its
  // final flux) to 1e-12, not deep physical convergence — and this suite
  // also runs under ASan/UBSan in CI, where passes are expensive.
  sn::MultigroupOptions opts;
  opts.inner = {1e-4, 60, false};

  // Serial sweep-pass reference: per-group serial sweeps behind the same
  // pass algebra the engines implement.
  const auto reference = sn::solve_multigroup_sweeps(
      xs,
      sn::sequential_sweep_pass(
          xs,
          [&](int g) -> sn::SweepOperator {
            auto gd = make_group_disc(xs.group_view(g));
            return [gd, &quad](const std::vector<double>& q) {
              return sn::serial_sweep(*gd, quad, q);
            };
          }),
      opts);
  ASSERT_TRUE(reference.converged) << scenario;

  const auto check = [&](const std::vector<std::vector<double>>& phi,
                         const char* engine) {
    ASSERT_EQ(phi.size(), reference.phi.size()) << scenario << "/" << engine;
    for (std::size_t g = 0; g < phi.size(); ++g)
      for (std::size_t c = 0; c < phi[g].size(); ++c)
        ASSERT_NEAR(phi[g][c], reference.phi[g][c],
                    kTol * (1.0 + reference.phi[g][c]))
            << scenario << "/" << engine << " group " << g << " cell " << c;
  };
  check(run_multigroup_engine(m, ps, disc, quad, xs, 2,
                              sweep::EngineKind::DataDriven, true, false,
                              opts),
        "data-driven-pipelined");
  check(run_multigroup_engine(m, ps, disc, quad, xs, 2,
                              sweep::EngineKind::DataDriven, false, false,
                              opts),
        "data-driven-barriered");
  check(run_multigroup_engine(m, ps, disc, quad, xs, 2,
                              sweep::EngineKind::Bsp, true, false, opts),
        "bsp-pipelined");
  check(run_multigroup_engine(m, ps, disc, quad, xs, 2,
                              sweep::EngineKind::DataDriven, true, true,
                              opts),
        "data-driven-coarsened-pipelined");
}

TEST(Equivalence, MultigroupStructuredKobayashi) {
  const mesh::StructuredMesh m = mesh::make_kobayashi_mesh(8);
  const sn::MultigroupXs xs = sn::MultigroupXs::cascade(
      sn::MaterialTable::kobayashi(), m.materials(), m.num_cells(), 4, 0.6);
  const sn::StructuredDD disc(m, xs.group_view(0));
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);
  const partition::StructuredBlockLayout layout(m.dims(), {4, 4, 4});
  const partition::CsrGraph cg = partition::cell_graph(m);
  const partition::PatchSet ps(partition::block_partition(layout),
                               layout.num_patches(), &cg);
  expect_multigroup_engines_match(
      "multigroup-kobayashi", m, ps, disc, quad, xs,
      [&](const sn::CellXs& gxs) {
        return std::make_shared<sn::StructuredDD>(m, gxs);
      });
}

TEST(Equivalence, MultigroupCyclicTwistedPipelinedVsBarriered) {
  // Cyclic mesh + multigroup: both modes must lag each group's cut faces
  // independently (group-strided LaggedFluxStore) and commit once per
  // pass, so their solves stay bitwise-identical. Guards the two
  // regressions this combination has had: shared lagged slots across
  // groups (flux divergence) and non-re-armed pipeline gates (deadlock —
  // covered via max_lag_sweeps > 1 below, fenced by the suite timeout).
  const mesh::TetMesh m = mesh::make_twisted_column_mesh();
  const sn::MultigroupXs mxs = sn::MultigroupXs::cascade(
      sn::MaterialTable::ball(), m.materials(), m.num_cells(), 2, 0.6);
  const sn::TetStep disc(m, mxs.group_view(0));
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const partition::CsrGraph cg = partition::cell_graph(m);
  const auto part = partition::partition_graph(cg, 6);
  const partition::PatchSet ps(part, 6, &cg);

  sn::MultigroupOptions opts;
  opts.inner = {1e-5, 60, false};
  const auto run = [&](bool pipelined, int max_lag_sweeps) {
    std::vector<std::vector<double>> phi;
    comm::Cluster::run(2, [&](comm::Context& ctx) {
      sweep::SolverConfig config;
      config.num_workers = 2;
      config.cluster_grain = 8;
      config.cycle_policy = sweep::CyclePolicy::Lag;
      config.max_lag_sweeps = max_lag_sweeps;
      config.multigroup = &mxs;
      config.group_pipelining = pipelined;
      const auto owner =
          partition::assign_contiguous(ps.num_patches(), ctx.size());
      sweep::SweepSolver solver(ctx, m, ps, owner, disc, quad, config);
      const auto result = solver.solve_multigroup(opts);
      EXPECT_TRUE(result.converged);
      EXPECT_GT(solver.stats().cyclic_angles, 0);
      if (ctx.rank().value() == 0) phi = result.phi;
    });
    return phi;
  };

  const auto pipelined = run(true, 1);
  const auto barriered = run(false, 1);
  ASSERT_EQ(pipelined.size(), barriered.size());
  for (std::size_t g = 0; g < pipelined.size(); ++g)
    for (std::size_t c = 0; c < pipelined[g].size(); ++c)
      ASSERT_EQ(pipelined[g][c], barriered[g][c])
          << "group " << g << " cell " << c;

  // Inner lag sweeps (pass repeats) must terminate and stay mode-equal.
  const auto pipelined_lag = run(true, 3);
  const auto barriered_lag = run(false, 3);
  for (std::size_t g = 0; g < pipelined_lag.size(); ++g)
    for (std::size_t c = 0; c < pipelined_lag[g].size(); ++c)
      ASSERT_EQ(pipelined_lag[g][c], barriered_lag[g][c])
          << "lag group " << g << " cell " << c;
}

// ---------------------------------------------------------------------------
// Group sets (G = 7): batched engines at W ∈ {1, 2, 4} — W = 4 leaves a
// ragged final set {4, 5, 6}, W = 2 a single-lane set {6} — must reproduce
// the width-aware serial sweep-pass reference to 1e-12 across the matrix:
// data-driven pipelined, group-barriered, BSP pipelined, coarsened.
// ---------------------------------------------------------------------------

TEST(Equivalence, MultigroupGroupSetWidths) {
  const mesh::StructuredMesh m = mesh::make_kobayashi_mesh(8);
  const sn::MultigroupXs xs = sn::MultigroupXs::cascade(
      sn::MaterialTable::kobayashi(), m.materials(), m.num_cells(), 7, 0.6);
  const sn::StructuredDD disc(m, xs.group_view(0));
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const partition::StructuredBlockLayout layout(m.dims(), {4, 4, 4});
  const partition::CsrGraph cg = partition::cell_graph(m);
  const partition::PatchSet ps(partition::block_partition(layout),
                               layout.num_patches(), &cg);

  for (const int width : {1, 2, 4}) {
    SCOPED_TRACE(testing::Message() << "set width " << width);
    sn::MultigroupOptions opts;
    opts.inner = {1e-4, 60, false};
    opts.group_set_width = width;

    // Width-aware serial reference: per-group scalar sweeps behind the
    // same block pass algebra (fresh downscatter only from groups below
    // the set base, within-set coupling lagged one pass).
    const auto reference = sn::solve_multigroup_sweeps(
        xs,
        sn::sequential_sweep_pass(
            xs,
            [&](int g) -> sn::SweepOperator {
              auto gd = std::make_shared<sn::StructuredDD>(m, xs.group_view(g));
              return [gd, &quad](const std::vector<double>& q) {
                return sn::serial_sweep(*gd, quad, q);
              };
            },
            width),
        opts);
    ASSERT_TRUE(reference.converged);

    const auto check = [&](const std::vector<std::vector<double>>& phi,
                           const char* engine) {
      ASSERT_EQ(phi.size(), reference.phi.size()) << engine;
      for (std::size_t g = 0; g < phi.size(); ++g)
        for (std::size_t c = 0; c < phi[g].size(); ++c)
          ASSERT_NEAR(phi[g][c], reference.phi[g][c],
                      kTol * (1.0 + reference.phi[g][c]))
              << engine << " group " << g << " cell " << c;
    };
    check(run_multigroup_engine(m, ps, disc, quad, xs, 2,
                                sweep::EngineKind::DataDriven, true, false,
                                opts, width),
          "data-driven-pipelined");
    check(run_multigroup_engine(m, ps, disc, quad, xs, 2,
                                sweep::EngineKind::DataDriven, false, false,
                                opts, width),
          "data-driven-barriered");
    check(run_multigroup_engine(m, ps, disc, quad, xs, 2,
                                sweep::EngineKind::Bsp, true, false, opts,
                                width),
          "bsp-pipelined");
    check(run_multigroup_engine(m, ps, disc, quad, xs, 2,
                                sweep::EngineKind::DataDriven, true, true,
                                opts, width),
          "data-driven-coarsened-pipelined");
  }
}

TEST(Equivalence, MultigroupCyclicGroupSetPipelinedVsBarriered) {
  // Cyclic mesh + ragged group set: batched per-set gating must lag each
  // group's cut faces independently (lane l maps to group base + l in the
  // LaggedFluxStore) — pipelined and barriered solves stay equal to the
  // suite tolerance through the evolving lag state.
  const mesh::TetMesh m = mesh::make_twisted_column_mesh();
  const sn::MultigroupXs mxs = sn::MultigroupXs::cascade(
      sn::MaterialTable::ball(), m.materials(), m.num_cells(), 7, 0.6);
  const sn::TetStep disc(m, mxs.group_view(0));
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const partition::CsrGraph cg = partition::cell_graph(m);
  const auto part = partition::partition_graph(cg, 6);
  const partition::PatchSet ps(part, 6, &cg);

  sn::MultigroupOptions opts;
  opts.inner = {1e-5, 60, false};
  opts.group_set_width = 4;  // sets {0..3} and the ragged {4, 5, 6}
  const auto run = [&](bool pipelined) {
    std::vector<std::vector<double>> phi;
    comm::Cluster::run(2, [&](comm::Context& ctx) {
      sweep::SolverConfig config;
      config.num_workers = 2;
      config.cluster_grain = 8;
      config.cycle_policy = sweep::CyclePolicy::Lag;
      config.multigroup = &mxs;
      config.group_pipelining = pipelined;
      config.group_set_width = 4;
      const auto owner =
          partition::assign_contiguous(ps.num_patches(), ctx.size());
      sweep::SweepSolver solver(ctx, m, ps, owner, disc, quad, config);
      const auto result = solver.solve_multigroup(opts);
      EXPECT_TRUE(result.converged);
      EXPECT_GT(solver.stats().cyclic_angles, 0);
      if (ctx.rank().value() == 0) phi = result.phi;
    });
    return phi;
  };

  const auto pipelined = run(true);
  const auto barriered = run(false);
  ASSERT_EQ(pipelined.size(), barriered.size());
  for (std::size_t g = 0; g < pipelined.size(); ++g)
    for (std::size_t c = 0; c < pipelined[g].size(); ++c)
      ASSERT_NEAR(pipelined[g][c], barriered[g][c],
                  kTol * (1.0 + std::abs(barriered[g][c])))
          << "group " << g << " cell " << c;
}

// ---------------------------------------------------------------------------
// Randomized stress harness: fuzz (mesh family × G × W × boundary
// condition × engine × rank count × scheduler seed) tuples against the
// serial references — every engine run must match its reference to 1e-12,
// and re-running under a different scheduler seed with work stealing
// flipped must be bitwise identical (schedule perturbations change
// nothing). Structured draws exercise the reflecting/albedo boundary
// store; interleaved tet draws exercise the cycle-cut lag path on
// randomly jittered (vacuum) meshes. Deterministic: one fixed Rng seed.
// ---------------------------------------------------------------------------

TEST(Equivalence, RandomizedBoundaryStressHarness) {
  Rng rng(0x1c992023ULL);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  constexpr int kDraws = 27;
  for (int draw = 0; draw < kDraws; ++draw) {
    SCOPED_TRACE(testing::Message() << "draw " << draw);

    if (draw % 7 == 6) {
      // Tet draw: randomly jittered ball (vacuum boundaries, possibly
      // cyclic) under CyclePolicy::Lag — the stateful serial sweeper is
      // the reference whether or not the jitter produced cycles.
      const mesh::TetMesh m = mesh::make_jittered_ball_mesh(
          4, 2.5, 0.1 + 0.15 * rng.uniform(), rng());
      const sn::CellXs xs =
          expand(sn::MaterialTable::ball(), m.materials(), m.num_cells());
      const sn::TetStep disc(m, xs);
      const int parts = 3 + static_cast<int>(rng.below(4));
      const partition::CsrGraph cg = partition::cell_graph(m);
      const auto part = partition::partition_graph(cg, parts);
      const partition::PatchSet ps(part, parts, &cg);
      sn::SerialSweeper sweeper(disc, quad);
      const auto q = test_source(m.num_cells());
      std::vector<std::vector<double>> reference;
      for (int k = 0; k < kSweeps; ++k) reference.push_back(sweeper.sweep(q));
      const auto kind = rng.below(2) == 0 ? sweep::EngineKind::DataDriven
                                          : sweep::EngineKind::Bsp;
      const int ranks = 1 + static_cast<int>(rng.below(2));
      expect_matches(reference,
                     run_engine(m, ps, disc, quad, q, ranks, kind, false,
                                sweep::CyclePolicy::Lag),
                     "stress-tet", "engine");
      continue;
    }

    // Structured draw: random box dims, group count, set width, per-side
    // albedo, engine, pipelining, rank count and scheduler seed.
    const mesh::Index3 dims{3 + static_cast<int>(rng.below(4)),
                            3 + static_cast<int>(rng.below(4)),
                            3 + static_cast<int>(rng.below(4))};
    const mesh::StructuredMesh m(dims, {1.0, 1.0, 1.0});
    const std::int64_t n = m.num_cells();
    const int G = 1 + static_cast<int>(rng.below(4));
    const int W = 1 + static_cast<int>(rng.below(
                          static_cast<std::uint64_t>(std::min(G, 4))));

    // Random downscatter-only cross sections (scattering ratio ≤ 0.9 so
    // the pass loop converges) and a non-uniform source.
    sn::MultigroupXs xs(G, n);
    for (std::int64_t c = 0; c < n; ++c) {
      for (int g = 0; g < G; ++g) {
        const double st = 0.6 + 0.4 * rng.uniform();
        const double ratio = 0.3 + 0.6 * rng.uniform();
        const double within = g + 1 < G ? 0.5 + 0.4 * rng.uniform() : 1.0;
        xs.sigma_t(g, c) = st;
        xs.sigma_s(g, g, c) = ratio * st * within;
        if (g + 1 < G) xs.sigma_s(g, g + 1, c) = ratio * st * (1.0 - within);
        xs.source(g, c) = 0.1 + rng.uniform();
      }
    }
    sn::BoundarySpec bc;
    for (int side = 0; side < 6; ++side) {
      const auto pick = rng.below(4);  // bias: half the sides stay vacuum
      bc.albedo[static_cast<std::size_t>(side)] =
          pick < 2 ? 0.0 : pick == 2 ? 0.5 : 1.0;
    }

    sn::MultigroupOptions opts;
    opts.inner = {1e-4, 40, false};
    opts.group_set_width = W;
    const auto reference = sn::solve_multigroup_sweeps(
        xs,
        sn::sequential_sweep_pass(
            xs,
            [&](int g) -> sn::SweepOperator {
              auto gd = std::make_shared<sn::StructuredDD>(
                  m, xs.group_view(g), true, bc);
              auto sweeper =
                  std::make_shared<sn::StructuredSerialSweeper>(*gd, quad);
              return [gd, sweeper](const std::vector<double>& q) {
                return sweeper->sweep(q);
              };
            },
            W),
        opts);

    const sn::StructuredDD disc(m, xs.group_view(0), true, bc);
    const partition::StructuredBlockLayout layout(
        dims, {1 + static_cast<int>(rng.below(2)),
               1 + static_cast<int>(rng.below(2)),
               1 + static_cast<int>(rng.below(2))});
    const partition::CsrGraph cg = partition::cell_graph(m);
    const partition::PatchSet ps(partition::block_partition(layout),
                                 layout.num_patches(), &cg);
    const auto kind = rng.below(2) == 0 ? sweep::EngineKind::DataDriven
                                        : sweep::EngineKind::Bsp;
    const bool pipelined = rng.below(2) == 0;
    const int ranks = 1 + static_cast<int>(rng.below(2));
    const std::uint64_t seed_a = rng();
    const std::uint64_t seed_b = rng();

    const auto run = [&](std::uint64_t seed, int stealing) {
      std::vector<std::vector<double>> phi;
      comm::Cluster::run(ranks, [&](comm::Context& ctx) {
        sweep::SolverConfig config;
        config.engine = kind;
        config.num_workers = 2;
        config.cluster_grain = 8;
        config.multigroup = &xs;
        config.group_pipelining = pipelined;
        config.group_set_width = W;
        config.scheduler_seed = seed;
        config.work_stealing = stealing;
        const auto owner =
            partition::assign_contiguous(ps.num_patches(), ctx.size());
        sweep::SweepSolver solver(ctx, m, ps, owner, disc, quad, config);
        const auto result = solver.solve_multigroup(opts);
        if (ctx.rank().value() == 0) phi = result.phi;
      });
      return phi;
    };

    const auto phi = run(seed_a, -1);
    ASSERT_EQ(phi.size(), reference.phi.size());
    for (std::size_t g = 0; g < phi.size(); ++g)
      for (std::size_t c = 0; c < phi[g].size(); ++c)
        ASSERT_NEAR(phi[g][c], reference.phi[g][c],
                    kTol * (1.0 + std::abs(reference.phi[g][c])))
            << "group " << g << " cell " << c;

    // Schedule perturbation: a different scheduler seed with work
    // stealing forced on must be bitwise identical.
    const auto phi_perturbed = run(seed_b, 1);
    for (std::size_t g = 0; g < phi.size(); ++g)
      for (std::size_t c = 0; c < phi[g].size(); ++c)
        ASSERT_EQ(phi[g][c], phi_perturbed[g][c])
            << "perturbed group " << g << " cell " << c;
  }
}

TEST(Equivalence, MultigroupUnstructuredBall) {
  const mesh::TetMesh m = mesh::make_ball_mesh(5, 3.0);
  const sn::MultigroupXs xs = sn::MultigroupXs::cascade(
      sn::MaterialTable::ball(), m.materials(), m.num_cells(), 4, 0.6);
  const sn::TetStep disc(m, xs.group_view(0));
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const partition::CsrGraph cg = partition::cell_graph(m);
  const auto part = partition::partition_graph(cg, 5);
  const partition::PatchSet ps(part, 5, &cg);
  expect_multigroup_engines_match(
      "multigroup-ball", m, ps, disc, quad, xs,
      [&](const sn::CellXs& gxs) {
        return std::make_shared<sn::TetStep>(m, gxs);
      });
}

}  // namespace
}  // namespace jsweep