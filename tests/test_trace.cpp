// Tests for the jsweep::trace subsystem: ring-buffer recorder semantics,
// engine/sim event emission, Chrome trace-event JSON export, and
// critical-path extraction on a known tiny DAG.

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "core/bsp_engine.hpp"
#include "core/engine.hpp"
#include "sim/data_driven_sim.hpp"
#include "sn/quadrature.hpp"
#include "support/timer.hpp"
#include "trace/chrome_export.hpp"
#include "trace/critical_path.hpp"
#include "trace/trace.hpp"

namespace jsweep {
namespace {

constexpr std::int64_t kMs = 1'000'000;  // ns per millisecond

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker (validates structure, builds no DOM).
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  static bool valid(const std::string& s) {
    JsonChecker c(s);
    c.ws();
    if (!c.value()) return false;
    c.ws();
    return c.pos_ == s.size();
  }

 private:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }
  void ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }
  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }
  bool literal(const char* lit) {
    for (; *lit != '\0'; ++lit)
      if (!consume(*lit)) return false;
    return true;
  }

  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (eof()) return false;
        ++pos_;
      }
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (!eof() && (peek() == '-' || peek() == '+')) ++pos_;
    bool digits = false;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      peek() == '-' || peek() == '+')) {
      if (std::isdigit(static_cast<unsigned char>(peek()))) digits = true;
      ++pos_;
    }
    return digits && pos_ > start;
  }

  bool members(char close, bool keyed) {
    ws();
    if (consume(close)) return true;
    for (;;) {
      ws();
      if (keyed) {
        if (!string()) return false;
        ws();
        if (!consume(':')) return false;
        ws();
      }
      if (!value()) return false;
      ws();
      if (consume(',')) continue;
      return consume(close);
    }
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{':
        ++pos_;
        return members('}', /*keyed=*/true);
      case '[':
        ++pos_;
        return members(']', /*keyed=*/false);
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(JsonChecker, SanityOnKnownStrings) {
  EXPECT_TRUE(JsonChecker::valid(R"({"a": [1, 2.5, -3e4], "b": "x\"y"})"));
  EXPECT_TRUE(JsonChecker::valid("[]"));
  EXPECT_FALSE(JsonChecker::valid(R"({"a": 1,})"));
  EXPECT_FALSE(JsonChecker::valid(R"({"a": })"));
  EXPECT_FALSE(JsonChecker::valid("{\"a\": 1} trailing"));
}

// ---------------------------------------------------------------------------
// Recorder / ring buffer
// ---------------------------------------------------------------------------

TEST(EventRing, KeepsRecordOrder) {
  trace::EventRing ring(8);
  for (int i = 0; i < 5; ++i)
    ring.push(trace::make_instant(trace::EventKind::StreamSend, i));
  ASSERT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(ring.at(i).t0_ns, static_cast<std::int64_t>(i));
}

TEST(EventRing, OverwritesOldestWhenFull) {
  trace::EventRing ring(4);
  for (int i = 0; i < 10; ++i)
    ring.push(trace::make_instant(trace::EventKind::StreamSend, i));
  ASSERT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6);
  // The 4 most recent events survive, still in record order.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(ring.at(i).t0_ns, static_cast<std::int64_t>(6 + i));
}

TEST(Recorder, TrackIdentityAndOrdering) {
  trace::Recorder rec;
  trace::Track& a = rec.track(1, 0);
  trace::Track& b = rec.track(0, trace::kMasterTrack);
  trace::Track& c = rec.track(0, 1);
  trace::Track& a2 = rec.track(1, 0);
  EXPECT_EQ(&a, &a2);  // same (rank, id) -> same track
  const auto tracks = rec.tracks();
  ASSERT_EQ(tracks.size(), 3u);
  // Rank-major, master before workers.
  EXPECT_EQ(tracks[0], &b);
  EXPECT_EQ(tracks[1], &c);
  EXPECT_EQ(tracks[2], &a);
  EXPECT_EQ(rec.total_events(), 0);
}

TEST(Recorder, NowIsMonotonic) {
  trace::Recorder rec;
  std::int64_t last = rec.now_ns();
  for (int i = 0; i < 100; ++i) {
    const std::int64_t t = rec.now_ns();
    EXPECT_GE(t, last);
    last = t;
  }
}

// ---------------------------------------------------------------------------
// Engine event emission
// ---------------------------------------------------------------------------

/// Waits for `waits` input streams, then does ~50µs of work once and sends
/// one stream to each destination patch.
class RelayProgram final : public core::PatchProgram {
 public:
  RelayProgram(PatchId p, int waits, std::vector<std::int32_t> dests)
      : PatchProgram(p, TaskTag{0}), waits_(waits), dests_(std::move(dests)) {}

  void init() override {
    received_ = 0;
    fired_ = false;
    out_.clear();
  }
  void input(const core::Stream&) override { ++received_; }
  void compute() override {
    if (fired_ || received_ < waits_) return;
    fired_ = true;
    WallTimer t;
    while (t.seconds() < 50e-6) {
    }
    for (const auto d : dests_)
      out_.push_back(core::Stream{key(), {PatchId{d}, TaskTag{0}},
                                  comm::Bytes(16)});
  }
  std::optional<core::Stream> output() override {
    if (out_.empty()) return std::nullopt;
    core::Stream s = std::move(out_.back());
    out_.pop_back();
    return s;
  }
  bool vote_to_halt() override { return true; }
  [[nodiscard]] std::int64_t remaining_work() const override {
    return fired_ ? 0 : 1;
  }
  [[nodiscard]] std::int64_t total_work() const override { return 1; }

 private:
  int waits_;
  std::vector<std::int32_t> dests_;
  int received_ = 0;
  bool fired_ = false;
  std::vector<core::Stream> out_;
};

/// Chain patch 0 → 1 → … → npatches-1 split across `ranks` ranks; returns
/// the summed engine executions.
std::int64_t run_traced_chain(trace::Recorder& rec, int ranks,
                              int npatches) {
  std::atomic<std::int64_t> executions{0};
  comm::Cluster::run(ranks, [&](comm::Context& ctx) {
    core::Engine engine(
        ctx, {2, core::TerminationMode::KnownWorkload, &rec});
    std::vector<RankId> owner(static_cast<std::size_t>(npatches));
    for (int p = 0; p < npatches; ++p)
      owner[static_cast<std::size_t>(p)] = RankId{p % ranks};
    for (int p = 0; p < npatches; ++p) {
      if (owner[static_cast<std::size_t>(p)] != ctx.rank()) continue;
      std::vector<std::int32_t> dests;
      if (p + 1 < npatches) dests.push_back(p + 1);
      engine.add_program(std::make_unique<RelayProgram>(
                             PatchId{p}, p == 0 ? 0 : 1, dests),
                         /*priority=*/0.0, /*initially_active=*/true);
    }
    engine.set_routes(owner);
    engine.run();
    executions.fetch_add(engine.stats().executions);
  });
  return executions.load();
}

TEST(EngineTrace, RecordsOrderedExecutionsPerTrack) {
  trace::Recorder rec;
  const std::int64_t executions = run_traced_chain(rec, 2, 8);
  ASSERT_GT(executions, 0);

  std::int64_t exec_events = 0;
  std::vector<std::int32_t> ranks_seen;
  for (const trace::Track* t : rec.tracks()) {
    if (ranks_seen.empty() || ranks_seen.back() != t->rank())
      ranks_seen.push_back(t->rank());
    std::int64_t last_t0 = -1;
    for (std::size_t i = 0; i < t->ring().size(); ++i) {
      const trace::Event& e = t->ring().at(i);
      EXPECT_EQ(e.rank, t->rank());
      EXPECT_EQ(e.track, t->id());
      EXPECT_LE(e.t0_ns, e.t1_ns);
      if (e.kind != trace::EventKind::Exec) continue;
      ++exec_events;
      EXPECT_FALSE(t->is_master()) << "exec events belong to workers";
      EXPECT_TRUE(e.src.patch.valid());
      // A worker's executions are recorded in chronological order.
      EXPECT_GE(e.t0_ns, last_t0);
      last_t0 = e.t0_ns;
    }
  }
  EXPECT_EQ(exec_events, executions);
  EXPECT_EQ(ranks_seen, (std::vector<std::int32_t>{0, 1}));
  EXPECT_EQ(rec.dropped_events(), 0);
}

TEST(EngineTrace, StreamEventsCoverChainEdges) {
  trace::Recorder rec;
  run_traced_chain(rec, 2, 6);
  std::int64_t sends = 0;
  std::int64_t recvs = 0;
  for (const trace::Track* t : rec.tracks())
    for (std::size_t i = 0; i < t->ring().size(); ++i) {
      const trace::Event& e = t->ring().at(i);
      if (e.kind == trace::EventKind::StreamSend) ++sends;
      if (e.kind == trace::EventKind::StreamRecv) ++recvs;
    }
  // One stream per chain edge, each both sent and delivered.
  EXPECT_EQ(sends, 5);
  EXPECT_EQ(recvs, 5);
}

TEST(EngineTrace, DisabledRecorderLeavesNoTrace) {
  comm::Cluster::run(1, [](comm::Context& ctx) {
    core::Engine engine(ctx, {1, core::TerminationMode::KnownWorkload});
    engine.add_program(std::make_unique<RelayProgram>(
                           PatchId{0}, 0, std::vector<std::int32_t>{}),
                       0.0, true);
    engine.set_routes({RankId{0}});
    engine.run();  // must not crash with recorder == nullptr
    EXPECT_GT(engine.stats().executions, 0);
  });
}

TEST(BspEngineTrace, RecordsSuperstepsAndExecs) {
  trace::Recorder rec;
  comm::Cluster::run(1, [&](comm::Context& ctx) {
    core::BspEngine engine(ctx, {1, &rec});
    for (int p = 0; p < 4; ++p)
      engine.add_program(std::make_unique<RelayProgram>(
          PatchId{p}, p == 0 ? 0 : 1,
          p + 1 < 4 ? std::vector<std::int32_t>{p + 1}
                    : std::vector<std::int32_t>{}));
    engine.set_routes(std::vector<RankId>(4, RankId{0}));
    engine.run();
    std::int64_t supersteps = 0;
    std::int64_t execs = 0;
    for (const trace::Track* t : rec.tracks())
      for (std::size_t i = 0; i < t->ring().size(); ++i) {
        const trace::Event& e = t->ring().at(i);
        if (e.kind == trace::EventKind::Superstep) ++supersteps;
        if (e.kind == trace::EventKind::Exec) ++execs;
      }
    EXPECT_EQ(supersteps, engine.stats().supersteps);
    EXPECT_EQ(execs, engine.stats().executions);
  });
}

// ---------------------------------------------------------------------------
// Chrome export
// ---------------------------------------------------------------------------

TEST(ChromeExport, EmitsValidJsonWithOneTrackPerRank) {
  trace::Recorder rec;
  run_traced_chain(rec, 2, 6);
  std::ostringstream os;
  trace::write_chrome_trace(rec, os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker::valid(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"master\""), std::string::npos);
}

TEST(ChromeExport, EmptyRecorderStillValid) {
  trace::Recorder rec;
  std::ostringstream os;
  trace::write_chrome_trace(rec, os);
  EXPECT_TRUE(JsonChecker::valid(os.str()));
}

// ---------------------------------------------------------------------------
// Critical-path extraction
// ---------------------------------------------------------------------------

TEST(CriticalPath, KnownTinyDag) {
  // A [0,10ms] --stream@11ms--> B [12,30ms] --stream@31ms--> C [32,40ms];
  // D [0,1ms] is off-path. Expected chain A→B→C with waits 2ms before B
  // and 2ms before C: 10 + 2 + 18 + 2 + 8 = 40ms.
  trace::Recorder rec;
  const ProgramKey a{PatchId{0}, TaskTag{0}};
  const ProgramKey b{PatchId{1}, TaskTag{0}};
  const ProgramKey c{PatchId{2}, TaskTag{0}};
  const ProgramKey d{PatchId{3}, TaskTag{0}};

  const auto exec = [&](trace::Track& t, const ProgramKey& key,
                        std::int64_t t0, std::int64_t t1) {
    auto e = trace::make_span(trace::EventKind::Exec, t0, t1);
    e.src = key;
    t.record(e);
  };
  const auto recv = [&](trace::Track& t, const ProgramKey& src,
                        const ProgramKey& dst, std::int64_t at) {
    auto e = trace::make_instant(trace::EventKind::StreamRecv, at);
    e.src = src;
    e.dst = dst;
    t.record(e);
  };

  exec(rec.track(0, 0), a, 0, 10 * kMs);
  exec(rec.track(0, 1), d, 0, 1 * kMs);
  recv(rec.track(0, trace::kMasterTrack), a, b, 11 * kMs);
  exec(rec.track(0, 0), b, 12 * kMs, 30 * kMs);
  recv(rec.track(1, trace::kMasterTrack), b, c, 31 * kMs);
  exec(rec.track(1, 0), c, 32 * kMs, 40 * kMs);

  const trace::ProfileReport rep = trace::analyze(rec);
  EXPECT_EQ(rep.events, 6);
  EXPECT_NEAR(rep.span_seconds, 0.040, 1e-12);
  ASSERT_EQ(rep.critical_path.size(), 3u);
  EXPECT_EQ(rep.critical_path[0].prog, a);
  EXPECT_EQ(rep.critical_path[1].prog, b);
  EXPECT_EQ(rep.critical_path[2].prog, c);
  EXPECT_NEAR(rep.critical_path_seconds, 0.040, 1e-12);
  EXPECT_NEAR(rep.critical_path[0].wait_seconds, 0.0, 1e-12);
  EXPECT_NEAR(rep.critical_path[1].wait_seconds, 0.002, 1e-12);
  EXPECT_NEAR(rep.critical_path[1].exec_seconds, 0.018, 1e-12);
  EXPECT_NEAR(rep.critical_path[2].wait_seconds, 0.002, 1e-12);
  EXPECT_EQ(rep.critical_path[2].rank, 1);

  // Hottest program is B (18ms of exec time).
  ASSERT_FALSE(rep.hottest.empty());
  EXPECT_EQ(rep.hottest[0].prog, b);

  // Tables render one row per entry plus a header.
  EXPECT_EQ(trace::critical_path_table(rep).rows(), 3u);
  EXPECT_EQ(trace::rank_breakdown_table(rep).rows(), 2u);
  EXPECT_FALSE(trace::render_profile(rep).empty());
}

TEST(CriticalPath, SerialExecutionsChainWithoutStreams) {
  // One program executing three times serially: the path is the serial
  // chain of execution time; dead time between executions is not
  // dependency latency and does not count.
  trace::Recorder rec;
  const ProgramKey a{PatchId{0}, TaskTag{0}};
  trace::Track& t = rec.track(0, 0);
  for (int i = 0; i < 3; ++i) {
    auto e = trace::make_span(trace::EventKind::Exec, (10 * i) * kMs,
                              (10 * i + 4) * kMs);
    e.src = a;
    t.record(e);
  }
  const trace::ProfileReport rep = trace::analyze(rec);
  ASSERT_EQ(rep.critical_path.size(), 3u);
  EXPECT_NEAR(rep.critical_path_seconds, 3 * 0.004, 1e-12);
  EXPECT_NEAR(rep.critical_path[1].wait_seconds, 0.0, 1e-12);
}

TEST(CriticalPath, EmptyRecorderYieldsEmptyReport) {
  trace::Recorder rec;
  const trace::ProfileReport rep = trace::analyze(rec);
  EXPECT_EQ(rep.events, 0);
  EXPECT_TRUE(rep.critical_path.empty());
  EXPECT_TRUE(rep.ranks.empty());
}

TEST(CriticalPath, EngineTraceAnalyzes) {
  trace::Recorder rec;
  const std::int64_t executions = run_traced_chain(rec, 2, 8);
  const trace::ProfileReport rep = trace::analyze(rec);
  ASSERT_EQ(rep.ranks.size(), 2u);
  std::int64_t execs = 0;
  for (const auto& r : rep.ranks) {
    execs += r.executions;
    EXPECT_GT(r.busy_seconds, 0.0);
  }
  EXPECT_EQ(execs, executions);
  // The chain forces a nontrivial critical path spanning both ranks.
  EXPECT_GT(rep.critical_path_seconds, 0.0);
  EXPECT_GE(rep.critical_path.size(), 8u);
  EXPECT_LE(rep.critical_path_seconds, rep.span_seconds * 1.001);
}

// ---------------------------------------------------------------------------
// Simulator virtual-time emission
// ---------------------------------------------------------------------------

TEST(SimTrace, VirtualEventsMatchChunkCountsAndExport) {
  const sim::PatchTopology topo =
      sim::PatchTopology::structured({16, 16, 16}, {8, 8, 8});
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  trace::Recorder rec;
  sim::SimConfig cfg;
  cfg.processes = 2;
  cfg.workers_per_process = 2;
  cfg.cluster_grain = 128;
  cfg.recorder = &rec;
  const sim::SimResult r = sim::DataDrivenSim(topo, quad, cfg).run();
  ASSERT_GT(r.chunk_executions, 0);

  std::int64_t exec_events = 0;
  std::int64_t max_t1 = 0;
  for (const trace::Track* t : rec.tracks())
    for (std::size_t i = 0; i < t->ring().size(); ++i) {
      const trace::Event& e = t->ring().at(i);
      if (e.kind == trace::EventKind::Exec) ++exec_events;
      max_t1 = std::max(max_t1, e.t1_ns);
    }
  // Folding may merge several true executions into one simulated chunk,
  // so events ≤ chunk_executions; with a tiny mesh they are equal.
  EXPECT_GT(exec_events, 0);
  EXPECT_LE(exec_events, r.chunk_executions);
  // Virtual timestamps live on the simulated clock: within the simulated
  // elapsed time, far beyond what the wall clock spent.
  EXPECT_LE(static_cast<double>(max_t1) * 1e-9,
            r.elapsed_seconds + 1e-9);

  std::ostringstream os;
  trace::write_chrome_trace(rec, os);
  EXPECT_TRUE(JsonChecker::valid(os.str()));

  const trace::ProfileReport rep = trace::analyze(rec);
  EXPECT_EQ(rep.ranks.size(), 2u);
  EXPECT_GT(rep.critical_path_seconds, 0.0);
}

}  // namespace
}  // namespace jsweep
