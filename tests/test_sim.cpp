// Tests for the discrete-event performance simulator: topology models,
// transfer-curve extraction, the data-driven/BSP simulators and the KBA
// pipeline model.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "partition/graph_partition.hpp"
#include "sim/cost_model.hpp"
#include "sim/data_driven_sim.hpp"
#include "sim/emission.hpp"
#include "sim/kba_sim.hpp"
#include "sim/patch_topology.hpp"
#include "support/check.hpp"

namespace jsweep::sim {
namespace {

TEST(PatchTopology, StructuredLatticeCountsAndNeighbors) {
  const PatchTopology topo =
      PatchTopology::structured({40, 40, 40}, {20, 20, 20});
  EXPECT_EQ(topo.num_patches(), 8);
  EXPECT_EQ(topo.total_cells(), 64000);
  for (std::int32_t p = 0; p < 8; ++p) {
    EXPECT_EQ(topo.cells(p), 8000);
    EXPECT_EQ(topo.neighbors(p).size(), 3u);  // corner of a 2³ lattice
    for (const auto& nb : topo.neighbors(p))
      EXPECT_EQ(nb.interface_faces, 400);
  }
}

TEST(PatchTopology, UpwindDownwindPartitionNeighbors) {
  const PatchTopology topo =
      PatchTopology::structured({60, 60, 60}, {20, 20, 20});
  const mesh::Vec3 omega = mesh::normalized({1, 1, 1});
  for (std::int32_t p = 0; p < topo.num_patches(); ++p) {
    std::size_t up = 0;
    std::size_t down = 0;
    topo.for_upwind(p, omega, [&](const PatchNeighbor&) { ++up; });
    topo.for_downwind(p, omega, [&](const PatchNeighbor&) { ++down; });
    EXPECT_EQ(up + down, topo.neighbors(p).size());
  }
  // The center patch of the 3³ lattice has 3 upwind and 3 downwind.
  const std::int32_t center = 1 + 3 * (1 + 3 * 1);
  std::size_t up = 0;
  topo.for_upwind(center, omega, [&](const PatchNeighbor&) { ++up; });
  EXPECT_EQ(up, 3u);
}

TEST(PatchTopology, LatticeBallApproximatesSphere) {
  const PatchTopology topo = PatchTopology::lattice_ball(10, 500, 60);
  // Sphere fills ~π/6 of the bounding lattice.
  const double expect = std::numbers::pi / 6.0 * 1000.0;
  EXPECT_NEAR(static_cast<double>(topo.num_patches()), expect,
              0.25 * expect);
  // Neighbor relation symmetric.
  for (std::int32_t p = 0; p < topo.num_patches(); ++p) {
    for (const auto& nb : topo.neighbors(p)) {
      bool back = false;
      for (const auto& nb2 : topo.neighbors(nb.patch))
        back |= (nb2.patch == p);
      EXPECT_TRUE(back);
    }
  }
}

TEST(PatchTopology, FromPatchsetMatchesMesh) {
  const mesh::TetMesh m = mesh::make_ball_mesh(6, 3.0);
  const partition::CsrGraph g = partition::cell_graph(m);
  const auto part = partition::partition_graph(g, 4);
  const partition::PatchSet ps(part, 4, &g);
  const PatchTopology topo = PatchTopology::from_patchset(m, ps);
  EXPECT_EQ(topo.num_patches(), 4);
  EXPECT_EQ(topo.total_cells(), m.num_cells());
  // Interface counts symmetric: faces(p→q) == faces(q→p).
  for (std::int32_t p = 0; p < 4; ++p) {
    for (const auto& nb : topo.neighbors(p)) {
      std::int64_t reverse = 0;
      for (const auto& nb2 : topo.neighbors(nb.patch))
        if (nb2.patch == p) reverse = nb2.interface_faces;
      EXPECT_EQ(nb.interface_faces, reverse);
    }
  }
}

TEST(PatchTopology, ProcessAssignmentBalanced) {
  const PatchTopology topo =
      PatchTopology::structured({80, 80, 80}, {20, 20, 20});
  const auto procs = assign_processes(topo, 8);
  std::vector<int> counts(8, 0);
  for (const auto p : procs) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 8);
    ++counts[static_cast<std::size_t>(p)];
  }
  for (const auto c : counts) EXPECT_EQ(c, 8);
}

// ---------------------------------------------------------------------------
// Transfer curves
// ---------------------------------------------------------------------------

TEST(TransferCurves, MonotoneAndComplete) {
  for (const auto strategy :
       {graph::PriorityStrategy::None, graph::PriorityStrategy::BFS,
        graph::PriorityStrategy::SLBD}) {
    const TransferCurves c = extract_curves_structured(
        {8, 8, 8}, mesh::normalized({1, 1, 1}), strategy, 64);
    ASSERT_GE(c.num_chunks(), 1);
    double prev_e = 0.0;
    double prev_c = 0.0;
    for (int i = 0; i < c.num_chunks(); ++i) {
      EXPECT_GE(c.emission[static_cast<std::size_t>(i)], prev_e);
      EXPECT_GE(c.consumption[static_cast<std::size_t>(i)], prev_c);
      prev_e = c.emission[static_cast<std::size_t>(i)];
      prev_c = c.consumption[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(c.emission.back(), 1.0, 1e-12);
    EXPECT_NEAR(c.consumption.back(), 1.0, 1e-12);
  }
}

TEST(TransferCurves, SlbdEmitsEarlierThanFifoOnAverage) {
  // SLBD exists precisely to push boundary data out sooner; its mean
  // cumulative emission must dominate the unprioritized order.
  const mesh::Vec3 omega = mesh::normalized({1, 1, 1});
  const TransferCurves slbd =
      extract_curves_structured({10, 10, 10}, omega,
                                graph::PriorityStrategy::SLBD, 25);
  const TransferCurves none =
      extract_curves_structured({10, 10, 10}, omega,
                                graph::PriorityStrategy::None, 25);
  ASSERT_EQ(slbd.num_chunks(), none.num_chunks());
  double mean_slbd = 0.0;
  double mean_none = 0.0;
  for (int i = 0; i < slbd.num_chunks(); ++i) {
    mean_slbd += slbd.emission[static_cast<std::size_t>(i)];
    mean_none += none.emission[static_cast<std::size_t>(i)];
  }
  EXPECT_GT(mean_slbd, mean_none);
}

TEST(TransferCurves, RequiredUpwindChunkSemantics) {
  const TransferCurves c = extract_curves_structured(
      {8, 8, 8}, mesh::normalized({1, 1, 1}), graph::PriorityStrategy::SLBD,
      64);
  const int n = c.num_chunks();
  // Monotone in my_chunk; never exceeds upwind chunk count.
  int prev = -1;
  for (int my = 0; my < n; ++my) {
    const int req = c.required_upwind_chunk(my, n, n);
    EXPECT_GE(req, prev);
    EXPECT_LT(req, n);
    prev = req;
  }
  // Last chunk needs (almost) everything: the required upwind chunk must
  // be one whose emission reaches 1.
  const int last_req = c.required_upwind_chunk(n - 1, n, n);
  EXPECT_GE(c.emission_at(last_req, n), 1.0 - 1e-9);
}

TEST(TransferCurves, TetExtractionWorks) {
  const TransferCurves c = extract_curves_tet(
      3, mesh::normalized({0.3, -0.5, 0.81}), graph::PriorityStrategy::SLBD,
      32);
  EXPECT_GE(c.num_chunks(), 2);
  EXPECT_NEAR(c.emission.back(), 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Data-driven simulator
// ---------------------------------------------------------------------------

SimConfig small_config(int processes, int workers) {
  SimConfig cfg;
  cfg.processes = processes;
  cfg.workers_per_process = workers;
  cfg.cluster_grain = 200;
  cfg.rep_patch_dims = {8, 8, 8};
  return cfg;
}

TEST(DataDrivenSim, ExecutesAllChunks) {
  const PatchTopology topo =
      PatchTopology::structured({32, 32, 32}, {8, 8, 8});
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  DataDrivenSim sim(topo, quad, small_config(4, 3));
  const SimResult r = sim.run();
  // 64 patches × 8 angles × ceil(512/200)=3 chunks.
  EXPECT_EQ(r.chunk_executions, 64 * 8 * 3);
  EXPECT_GT(r.elapsed_seconds, 0.0);
  EXPECT_GT(r.messages, 0);
  EXPECT_EQ(r.cores, 4 * 4);
  // Breakdown adds up to total core time.
  const auto& b = r.breakdown;
  EXPECT_NEAR(b.kernel + b.graphop + b.pack + b.route + b.idle,
              r.core_seconds(), 1e-9 * r.core_seconds() + 1e-12);
}

TEST(DataDrivenSim, StrongScalingReducesTime) {
  const PatchTopology topo =
      PatchTopology::structured({64, 64, 64}, {8, 8, 8});
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);
  const double t1 = DataDrivenSim(topo, quad, small_config(1, 3)).run()
                        .elapsed_seconds;
  const double t8 = DataDrivenSim(topo, quad, small_config(8, 3)).run()
                        .elapsed_seconds;
  EXPECT_LT(t8, t1);
  // Speedup is sublinear but real.
  EXPECT_GT(t1 / t8, 2.0);
}

TEST(DataDrivenSim, MoreWorkersHelpUpToParallelism) {
  const PatchTopology topo =
      PatchTopology::structured({64, 64, 64}, {8, 8, 8});
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const double t2 = DataDrivenSim(topo, quad, small_config(2, 2)).run()
                        .elapsed_seconds;
  const double t8 = DataDrivenSim(topo, quad, small_config(2, 8)).run()
                        .elapsed_seconds;
  EXPECT_LE(t8, t2 * 1.001);
}

TEST(DataDrivenSim, CoarsenedGraphFaster) {
  const PatchTopology topo =
      PatchTopology::structured({48, 48, 48}, {8, 8, 8});
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  SimConfig dag = small_config(2, 3);
  SimConfig cg = dag;
  cg.coarsened = true;
  const double t_dag = DataDrivenSim(topo, quad, dag).run().elapsed_seconds;
  const double t_cg = DataDrivenSim(topo, quad, cg).run().elapsed_seconds;
  EXPECT_LT(t_cg, t_dag);
}

TEST(DataDrivenSim, LaggedSlotsRelaxDependencesAndSpeedTheSweep) {
  // The cycle-breaking model: lagged dependence slots never gate chunk
  // readiness, so a fully-lagged sweep pipelines at least as well as the
  // gated baseline while executing the identical chunk workload — and a
  // zero fraction reproduces the baseline exactly.
  const PatchTopology topo =
      PatchTopology::structured({48, 48, 48}, {8, 8, 8});
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const SimConfig base = small_config(4, 3);

  const SimResult r_base = DataDrivenSim(topo, quad, base).run();
  EXPECT_EQ(r_base.lagged_slots, 0);

  SimConfig zero = base;
  zero.lagged_fraction = 0.0;
  const SimResult r_zero = DataDrivenSim(topo, quad, zero).run();
  EXPECT_EQ(r_zero.elapsed_seconds, r_base.elapsed_seconds);

  SimConfig all = base;
  all.lagged_fraction = 1.0;
  const SimResult r_all = DataDrivenSim(topo, quad, all).run();
  EXPECT_GT(r_all.lagged_slots, 0);
  EXPECT_EQ(r_all.chunk_executions, r_base.chunk_executions);
  EXPECT_LE(r_all.elapsed_seconds, r_base.elapsed_seconds);

  SimConfig half = base;
  half.lagged_fraction = 0.4;
  half.lag_seed = 99;
  const SimResult r_half = DataDrivenSim(topo, quad, half).run();
  EXPECT_GT(r_half.lagged_slots, 0);
  EXPECT_LT(r_half.lagged_slots, r_all.lagged_slots);
  // Deterministic in the seed.
  const SimResult r_half2 = DataDrivenSim(topo, quad, half).run();
  EXPECT_EQ(r_half.elapsed_seconds, r_half2.elapsed_seconds);
  EXPECT_EQ(r_half.lagged_slots, r_half2.lagged_slots);

  // BSP mode honors the same model.
  SimConfig bsp = all;
  bsp.engine = SimEngine::Bsp;
  const SimResult r_bsp = DataDrivenSim(topo, quad, bsp).run();
  EXPECT_GT(r_bsp.lagged_slots, 0);
  SimConfig bsp_base = base;
  bsp_base.engine = SimEngine::Bsp;
  const SimResult r_bsp_base = DataDrivenSim(topo, quad, bsp_base).run();
  EXPECT_LE(r_bsp.supersteps, r_bsp_base.supersteps);
}

TEST(DataDrivenSim, DeterministicAcrossRuns) {
  const PatchTopology topo =
      PatchTopology::structured({32, 32, 32}, {8, 8, 8});
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const double a =
      DataDrivenSim(topo, quad, small_config(4, 3)).run().elapsed_seconds;
  const double b =
      DataDrivenSim(topo, quad, small_config(4, 3)).run().elapsed_seconds;
  EXPECT_EQ(a, b);
}

TEST(DataDrivenSim, WorksOnBallLattice) {
  const PatchTopology topo = PatchTopology::lattice_ball(8, 500, 60);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);
  SimConfig cfg = small_config(4, 3);
  cfg.tet_mesh = true;
  cfg.rep_block_hexes = 3;
  cfg.cluster_grain = 64;
  const SimResult r = DataDrivenSim(topo, quad, cfg).run();
  EXPECT_GT(r.elapsed_seconds, 0.0);
  EXPECT_GT(r.messages, 0);
}

TEST(BspSim, SlowerThanDataDriven) {
  const PatchTopology topo =
      PatchTopology::structured({48, 48, 48}, {8, 8, 8});
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  SimConfig dd = small_config(4, 3);
  SimConfig bsp = dd;
  bsp.engine = SimEngine::Bsp;
  const SimResult rd = DataDrivenSim(topo, quad, dd).run();
  const SimResult rb = DataDrivenSim(topo, quad, bsp).run();
  EXPECT_EQ(rb.chunk_executions, rd.chunk_executions);
  EXPECT_GT(rb.supersteps, 0);
  // The superstep barrier + one-chunk-per-step idling must cost time:
  // the paper's core claim (Fig. 17).
  EXPECT_GT(rb.elapsed_seconds, rd.elapsed_seconds);
}

// ---------------------------------------------------------------------------
// KBA pipeline model
// ---------------------------------------------------------------------------

TEST(KbaSim, SingleRankIsSerialWork) {
  KbaSimConfig cfg;
  cfg.mesh_dims = {32, 32, 32};
  cfg.px = 1;
  cfg.py = 1;
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const SimResult r = simulate_kba(cfg, quad);
  const double work_ns = static_cast<double>(32 * 32 * 32) * 8 *
                         cfg.cost.t_vertex_ns;
  EXPECT_NEAR(r.elapsed_seconds, work_ns * 1e-9, 0.05 * work_ns * 1e-9);
  EXPECT_EQ(r.messages, 0);
}

TEST(KbaSim, ScalesWithRanks) {
  KbaSimConfig base;
  base.mesh_dims = {64, 64, 64};
  base.z_block = 8;
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);
  base.px = 1;
  base.py = 1;
  const double t1 = simulate_kba(base, quad).elapsed_seconds;
  base.px = 4;
  base.py = 4;
  const double t16 = simulate_kba(base, quad).elapsed_seconds;
  const double speedup = t1 / t16;
  EXPECT_GT(speedup, 4.0);
  EXPECT_LT(speedup, 16.0);  // pipeline fill keeps it sublinear
}

TEST(KbaSim, SmallerBlocksPipelineBetterAtScale) {
  KbaSimConfig cfg;
  cfg.mesh_dims = {64, 64, 64};
  cfg.px = 8;
  cfg.py = 8;
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);
  cfg.z_block = 64;  // no pipelining within an angle
  const double coarse = simulate_kba(cfg, quad).elapsed_seconds;
  cfg.z_block = 4;
  const double fine = simulate_kba(cfg, quad).elapsed_seconds;
  EXPECT_LT(fine, coarse);
}

TEST(CostModel, CalibrationIsPlausible) {
  const double ns = calibrate_vertex_ns();
  EXPECT_GT(ns, 5.0);
  EXPECT_LT(ns, 5000.0);
}

TEST(CostModel, CollectiveGrowsLogarithmically) {
  const CostModel cm;
  EXPECT_EQ(cm.collective_ns(1), 0.0);
  EXPECT_GT(cm.collective_ns(1024), cm.collective_ns(16));
  EXPECT_NEAR(cm.collective_ns(1024) / cm.collective_ns(16),
              10.0 / 4.0, 1e-9);
}

}  // namespace
}  // namespace jsweep::sim

// --- Chunk-cap folding --------------------------------------------------------

namespace jsweep::sim {
namespace {

TEST(FoldFactor, TrueExecutionCountPreserved) {
  // grain=1 on 512-cell patches folds 512 true executions into at most
  // max_chunks simulated chunks; the reported execution count must still
  // reflect the true total.
  const PatchTopology topo =
      PatchTopology::structured({16, 16, 16}, {8, 8, 8});
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  SimConfig cfg;
  cfg.processes = 2;
  cfg.workers_per_process = 3;
  cfg.cluster_grain = 1;
  cfg.max_chunks_per_program = 16;
  cfg.rep_patch_dims = {8, 8, 8};
  const SimResult r = DataDrivenSim(topo, quad, cfg).run();
  // 8 patches x 8 angles x 512 true executions.
  EXPECT_EQ(r.chunk_executions, 8 * 8 * 512);
}

TEST(FoldFactor, CapChangesGranularityNotTotals) {
  const PatchTopology topo =
      PatchTopology::structured({32, 32, 32}, {8, 8, 8});
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  SimConfig coarse;
  coarse.processes = 4;
  coarse.workers_per_process = 3;
  coarse.cluster_grain = 2;
  coarse.max_chunks_per_program = 8;
  coarse.rep_patch_dims = {8, 8, 8};
  SimConfig fine = coarse;
  fine.max_chunks_per_program = 64;
  const SimResult rc = DataDrivenSim(topo, quad, coarse).run();
  const SimResult rf = DataDrivenSim(topo, quad, fine).run();
  EXPECT_EQ(rc.chunk_executions, rf.chunk_executions);
  // Folding coarsens pipelining but total busy work is identical, so the
  // two estimates stay within a factor of two of each other.
  EXPECT_LT(rc.elapsed_seconds / rf.elapsed_seconds, 2.0);
  EXPECT_GT(rc.elapsed_seconds / rf.elapsed_seconds, 0.5);
  EXPECT_NEAR(rc.breakdown.kernel, rf.breakdown.kernel,
              1e-9 * rf.breakdown.kernel);
}

TEST(CostPresets, DistinctAndOrdered) {
  const CostModel host;
  const CostModel s = CostModel::jsnt_s();
  const CostModel u = CostModel::jsnt_u();
  EXPECT_GT(s.t_vertex_ns, host.t_vertex_ns);
  EXPECT_GT(u.t_vertex_ns, s.t_vertex_ns);
}

TEST(DataDrivenSim, MultigroupExecutesAllGroupChunks) {
  const PatchTopology topo =
      PatchTopology::structured({32, 32, 32}, {8, 8, 8});
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  SimConfig cfg = small_config(4, 3);
  cfg.groups = 4;
  const SimResult r = DataDrivenSim(topo, quad, cfg).run();
  // 64 patches × 8 angles × 4 groups × ceil(512/200)=3 chunks.
  EXPECT_EQ(r.chunk_executions, 64 * 8 * 4 * 3);
}

TEST(DataDrivenSim, GroupPipeliningBeatsGroupBarriers) {
  // The point of the group axis: pipelined injection hides the per-group
  // pipeline fill/drain that a barrier forces every group to pay.
  const PatchTopology topo =
      PatchTopology::structured({64, 64, 64}, {8, 8, 8});
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);
  SimConfig cfg = small_config(8, 3);
  cfg.groups = 4;
  cfg.group_pipelining = true;
  const SimResult piped = DataDrivenSim(topo, quad, cfg).run();
  cfg.group_pipelining = false;
  const SimResult barriered = DataDrivenSim(topo, quad, cfg).run();
  EXPECT_EQ(piped.chunk_executions, barriered.chunk_executions);
  EXPECT_LT(piped.elapsed_seconds, barriered.elapsed_seconds);
}

TEST(DataDrivenSim, MultigroupBspCompletes) {
  const PatchTopology topo =
      PatchTopology::structured({32, 32, 32}, {8, 8, 8});
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  SimConfig cfg = small_config(4, 3);
  cfg.groups = 3;
  cfg.engine = SimEngine::Bsp;
  const SimResult r = DataDrivenSim(topo, quad, cfg).run();
  EXPECT_EQ(r.chunk_executions, 64 * 8 * 3 * 3);
  EXPECT_GT(r.supersteps, 0);
}

}  // namespace
}  // namespace jsweep::sim
