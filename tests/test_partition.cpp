// Tests for partitioners (SFC, blocks, graph-growing, RCB) and PatchSet.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <set>

#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/graph_partition.hpp"
#include "partition/patch_set.hpp"
#include "partition/rcb.hpp"
#include "partition/sfc.hpp"
#include "support/check.hpp"

namespace jsweep::partition {
namespace {

TEST(Morton, InterleavesBits) {
  EXPECT_EQ(morton3(0, 0, 0), 0u);
  EXPECT_EQ(morton3(1, 0, 0), 1u);
  EXPECT_EQ(morton3(0, 1, 0), 2u);
  EXPECT_EQ(morton3(0, 0, 1), 4u);
  EXPECT_EQ(morton3(1, 1, 1), 7u);
  EXPECT_EQ(morton3(2, 0, 0), 8u);
}

TEST(Morton, IsInjectiveOnSmallLattice) {
  std::set<std::uint64_t> codes;
  for (std::uint32_t z = 0; z < 8; ++z)
    for (std::uint32_t y = 0; y < 8; ++y)
      for (std::uint32_t x = 0; x < 8; ++x) codes.insert(morton3(x, y, z));
  EXPECT_EQ(codes.size(), 512u);
}

TEST(Hilbert, BijectiveAndContiguous) {
  // The Hilbert curve on a 2^b lattice visits every point exactly once and
  // consecutive indices are adjacent lattice points.
  constexpr int kBits = 3;
  constexpr int kN = 1 << kBits;
  std::vector<mesh::Index3> by_index(kN * kN * kN, {-1, -1, -1});
  std::set<std::uint64_t> codes;
  for (int z = 0; z < kN; ++z) {
    for (int y = 0; y < kN; ++y) {
      for (int x = 0; x < kN; ++x) {
        const auto h = hilbert3(static_cast<std::uint32_t>(x),
                                static_cast<std::uint32_t>(y),
                                static_cast<std::uint32_t>(z), kBits);
        ASSERT_LT(h, static_cast<std::uint64_t>(kN) * kN * kN);
        codes.insert(h);
        by_index[static_cast<std::size_t>(h)] = {x, y, z};
      }
    }
  }
  EXPECT_EQ(codes.size(), static_cast<std::size_t>(kN) * kN * kN);
  for (std::size_t i = 1; i < by_index.size(); ++i) {
    const auto& a = by_index[i - 1];
    const auto& b = by_index[i];
    const int dist = std::abs(a.i - b.i) + std::abs(a.j - b.j) +
                     std::abs(a.k - b.k);
    EXPECT_EQ(dist, 1) << "hilbert discontinuity at index " << i;
  }
}

TEST(Sfc, PartitionBalanced) {
  for (const auto curve : {Curve::Morton, Curve::Hilbert}) {
    const auto part = partition_sfc({10, 10, 10}, 7, curve);
    const auto sizes = part_sizes(part, 7);
    const auto [mn, mx] = std::minmax_element(sizes.begin(), sizes.end());
    EXPECT_LE(*mx - *mn, 1);
  }
}

TEST(BlockLayout, GridAndBoxes) {
  const StructuredBlockLayout layout({45, 40, 20}, {20, 20, 20});
  EXPECT_EQ(layout.grid_dims(), (mesh::Index3{3, 2, 1}));
  EXPECT_EQ(layout.num_patches(), 6);
  // Trailing patch in x absorbs the remainder (5 cells).
  const mesh::Box last = layout.patch_box(layout.patch_at({2, 0, 0}));
  EXPECT_EQ(last.lo.i, 40);
  EXPECT_EQ(last.hi.i, 45);
  // Every cell maps to the patch whose box contains it.
  std::int64_t total = 0;
  for (int p = 0; p < layout.num_patches(); ++p)
    total += layout.cells_in(PatchId{p});
  EXPECT_EQ(total, 45LL * 40 * 20);
  EXPECT_EQ(layout.patch_of({41, 3, 3}), layout.patch_at({2, 0, 0}));
}

TEST(BlockLayout, NeighborsAndInterfaces) {
  const StructuredBlockLayout layout({40, 40, 40}, {20, 20, 20});
  const PatchId origin = layout.patch_at({0, 0, 0});
  EXPECT_FALSE(layout.neighbor(origin, mesh::FaceDir::XLo).valid());
  const PatchId right = layout.neighbor(origin, mesh::FaceDir::XHi);
  ASSERT_TRUE(right.valid());
  EXPECT_EQ(layout.patch_index(right), (mesh::Index3{1, 0, 0}));
  EXPECT_EQ(layout.interface_cells(origin, mesh::FaceDir::XHi), 20 * 20);
  EXPECT_EQ(layout.interface_cells(origin, mesh::FaceDir::XLo), 0);
}

TEST(Adjacency, StructuredDegrees) {
  const mesh::StructuredMesh m({3, 3, 3}, {1, 1, 1});
  const CsrGraph g = cell_graph(m);
  EXPECT_EQ(g.num_vertices(), 27);
  // Corner cells have 3 neighbors, center has 6.
  EXPECT_EQ(g.degree(m.cell_at({0, 0, 0}).value()), 3);
  EXPECT_EQ(g.degree(m.cell_at({1, 1, 1}).value()), 6);
}

TEST(Adjacency, TetGraphSymmetric) {
  const mesh::TetMesh m = mesh::make_ball_mesh(8, 4.0);
  const CsrGraph g = cell_graph(m);
  // Symmetry: u in adj(v) <=> v in adj(u).
  for (std::int64_t v = 0; v < g.num_vertices(); ++v) {
    g.for_neighbors(v, [&](std::int64_t u) {
      bool found = false;
      g.for_neighbors(u, [&](std::int64_t w) { found |= (w == v); });
      EXPECT_TRUE(found);
    });
  }
}

TEST(GraphPartition, BalancedAndBetterThanRandomCut) {
  const mesh::TetMesh m = mesh::make_ball_mesh(10, 5.0);
  const CsrGraph g = cell_graph(m);
  const int kParts = 8;
  const auto part = partition_graph(g, kParts);
  EXPECT_LE(imbalance(part, kParts), 1.10);

  // Compare against a scrambled assignment with the same sizes.
  std::vector<std::int32_t> random_part = part;
  std::mt19937 scramble(42);
  std::shuffle(random_part.begin(), random_part.end(), scramble);
  EXPECT_LT(edge_cut(g, part), edge_cut(g, random_part) / 2);
}

TEST(GraphPartition, SinglePartTrivial) {
  const mesh::StructuredMesh m({4, 4, 4}, {1, 1, 1});
  const CsrGraph g = cell_graph(m);
  const auto part = partition_graph(g, 1);
  EXPECT_TRUE(std::all_of(part.begin(), part.end(),
                          [](std::int32_t p) { return p == 0; }));
}

TEST(GraphPartition, DeterministicForFixedSeed) {
  const mesh::TetMesh m = mesh::make_ball_mesh(8, 4.0);
  const CsrGraph g = cell_graph(m);
  const auto a = partition_graph(g, 5);
  const auto b = partition_graph(g, 5);
  EXPECT_EQ(a, b);
}

TEST(Rcb, BalancedAndSpatial) {
  const mesh::StructuredMesh m({8, 8, 8}, {1, 1, 1});
  const auto centroids = cell_centroids(m);
  const auto part = partition_rcb(centroids, 8);
  const auto sizes = part_sizes(part, 8);
  const auto [mn, mx] = std::minmax_element(sizes.begin(), sizes.end());
  EXPECT_LE(*mx - *mn, 1);
  // RCB of a cube into 8 parts should roughly produce octants: cells in
  // the same octant share a part much more often than not.
  std::int64_t agree = 0;
  std::int64_t total = 0;
  for (std::int64_t c = 0; c + 1 < m.num_cells(); ++c) {
    const auto pa = m.index_of(CellId{c});
    const auto pb = m.index_of(CellId{c + 1});
    if (pa.i / 4 == pb.i / 4 && pa.j / 4 == pb.j / 4 && pa.k / 4 == pb.k / 4) {
      ++total;
      agree += (part[static_cast<std::size_t>(c)] ==
                part[static_cast<std::size_t>(c + 1)]);
    }
  }
  EXPECT_GT(static_cast<double>(agree), 0.8 * static_cast<double>(total));
}

TEST(PatchSet, CellsAndLocalIndices) {
  const mesh::StructuredMesh m({4, 4, 1}, {1, 1, 1});
  const auto part = partition_sfc({4, 4, 1}, 4, Curve::Morton);
  const CsrGraph g = cell_graph(m);
  const PatchSet ps(part, 4, &g);
  EXPECT_EQ(ps.num_patches(), 4);
  EXPECT_EQ(ps.num_cells(), 16);
  std::int64_t total = 0;
  for (int p = 0; p < 4; ++p) {
    const auto& cells = ps.cells(PatchId{p});
    total += static_cast<std::int64_t>(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      EXPECT_EQ(ps.patch_of(cells[i]), PatchId{p});
      EXPECT_EQ(ps.local_index(cells[i]), static_cast<std::int32_t>(i));
    }
  }
  EXPECT_EQ(total, 16);
}

TEST(PatchSet, NeighborsSymmetric) {
  const mesh::TetMesh m = mesh::make_ball_mesh(8, 4.0);
  const CsrGraph g = cell_graph(m);
  const auto part = partition_graph(g, 6);
  const PatchSet ps(part, 6, &g);
  for (int p = 0; p < 6; ++p) {
    for (const auto q : ps.neighbors(PatchId{p})) {
      const auto& back = ps.neighbors(q);
      EXPECT_NE(std::find(back.begin(), back.end(), PatchId{p}), back.end());
      EXPECT_NE(q, PatchId{p});
    }
  }
}

TEST(PatchSet, RejectsEmptyPatch) {
  // Patch 1 unused → must throw.
  EXPECT_THROW(PatchSet({0, 0, 2}, 3), CheckError);
}

TEST(Assignment, ContiguousAndRoundRobinCoverAllRanks) {
  for (const auto& owners :
       {assign_contiguous(10, 3), assign_round_robin(10, 3)}) {
    std::set<int> used;
    for (const auto r : owners) {
      EXPECT_TRUE(r.valid());
      EXPECT_LT(r.value(), 3);
      used.insert(r.value());
    }
    EXPECT_EQ(used.size(), 3u);
  }
}

TEST(Assignment, SfcBalanced) {
  const mesh::StructuredMesh m({6, 6, 6}, {1, 1, 1});
  const auto owners = assign_by_sfc(cell_centroids(m), 4);
  std::vector<int> counts(4, 0);
  for (const auto r : owners) ++counts[static_cast<std::size_t>(r.value())];
  const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LE(*mx - *mn, 1);
}

TEST(PatchCentroids, MeanOfCells) {
  const mesh::StructuredMesh m({2, 1, 1}, {1, 1, 1});
  const PatchSet ps({0, 1}, 2);
  const auto pc = patch_centroids(ps, cell_centroids(m));
  EXPECT_DOUBLE_EQ(pc[0].x, 0.5);
  EXPECT_DOUBLE_EQ(pc[1].x, 1.5);
}

}  // namespace
}  // namespace jsweep::partition
