// Golden-file regression tests (ctest label `golden`): the `kobayashi` and
// `quickstart` example scenarios are re-solved and compared against
// committed flux snapshots, so solver refactors cannot silently change the
// physics. The snapshots store the scalar-flux mean, peak and a strided
// sample of cells; comparison is relative to 1e-9 (loose enough for
// compiler/FMA variance, far tighter than any physics change).
//
// Regenerating a snapshot after an *intentional* numerics change:
//
//   JSWEEP_UPDATE_GOLDEN=1 ./build/tests/test_golden
//
// then commit the rewritten files under tests/golden/ with a note in the
// PR explaining why the physics moved.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/graph_partition.hpp"
#include "partition/patch_set.hpp"
#include "sn/boundary.hpp"
#include "sn/fission.hpp"
#include "sn/multigroup.hpp"
#include "sn/serial_sweep.hpp"
#include "sn/source_iteration.hpp"
#include "sweep/eigen.hpp"
#include "sweep/solver.hpp"

#ifndef JSWEEP_GOLDEN_DIR
#error "JSWEEP_GOLDEN_DIR must point at tests/golden"
#endif

namespace jsweep {
namespace {

constexpr double kRelTol = 1e-9;
constexpr double kAbsFloor = 1e-12;

struct Snapshot {
  double mean = 0.0;
  double peak = 0.0;
  std::vector<std::pair<std::int64_t, double>> cells;  ///< strided sample
};

Snapshot snapshot_of(const std::vector<double>& phi, std::int64_t stride) {
  Snapshot s;
  for (const auto v : phi) {
    s.mean += v;
    s.peak = std::max(s.peak, v);
  }
  s.mean /= static_cast<double>(phi.size());
  for (std::size_t c = 0; c < phi.size();
       c += static_cast<std::size_t>(stride))
    s.cells.emplace_back(static_cast<std::int64_t>(c), phi[c]);
  return s;
}

std::string golden_path(const char* name) {
  return std::string(JSWEEP_GOLDEN_DIR) + "/" + name + ".txt";
}

bool update_mode() {
  const char* env = std::getenv("JSWEEP_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

void write_snapshot(const char* name, const Snapshot& s) {
  const std::string path = golden_path(name);
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr) << "cannot write " << path;
  std::fprintf(f, "# jsweep golden flux snapshot: %s\n", name);
  std::fprintf(f, "mean %.17g\n", s.mean);
  std::fprintf(f, "peak %.17g\n", s.peak);
  for (const auto& [cell, value] : s.cells)
    std::fprintf(f, "cell %lld %.17g\n", static_cast<long long>(cell),
                 value);
  std::fclose(f);
  std::printf("[golden] wrote %s (%zu samples)\n", path.c_str(),
              s.cells.size());
}

Snapshot read_snapshot(const char* name) {
  const std::string path = golden_path(name);
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr) << "missing golden file " << path
                        << " — run with JSWEEP_UPDATE_GOLDEN=1 to create";
  Snapshot s;
  if (f == nullptr) return s;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    long long cell = 0;
    double value = 0.0;
    if (std::sscanf(line, "mean %lg", &value) == 1) {
      s.mean = value;
    } else if (std::sscanf(line, "peak %lg", &value) == 1) {
      s.peak = value;
    } else if (std::sscanf(line, "cell %lld %lg", &cell, &value) == 2) {
      s.cells.emplace_back(cell, value);
    }
  }
  std::fclose(f);
  return s;
}

void expect_close(double expected, double actual, const char* what) {
  const double tol = std::max(kAbsFloor, kRelTol * std::abs(expected));
  EXPECT_NEAR(expected, actual, tol) << what;
}

void check_against_golden(const char* name, const std::vector<double>& phi,
                          std::int64_t stride) {
  const Snapshot now = snapshot_of(phi, stride);
  if (update_mode()) {
    write_snapshot(name, now);
    return;
  }
  const Snapshot golden = read_snapshot(name);
  expect_close(golden.mean, now.mean, "flux mean");
  expect_close(golden.peak, now.peak, "flux peak");
  ASSERT_EQ(golden.cells.size(), now.cells.size())
      << name << ": sample count changed — mesh or stride drifted";
  for (std::size_t i = 0; i < golden.cells.size(); ++i) {
    ASSERT_EQ(golden.cells[i].first, now.cells[i].first);
    expect_close(golden.cells[i].second, now.cells[i].second, name);
  }
}

TEST(Golden, KobayashiSerialReference) {
  // The `kobayashi` example's serial reference at n = 8: full physics
  // (void duct + shield materials, S4, DD kernel with fixup), serial sweep
  // so the snapshot is independent of all engine machinery.
  const mesh::StructuredMesh m = mesh::make_kobayashi_mesh(8);
  const sn::CellXs xs =
      expand(sn::MaterialTable::kobayashi(), m.materials(), m.num_cells());
  const sn::StructuredDD disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);
  const auto result = sn::source_iteration(
      xs,
      [&](const std::vector<double>& q) {
        return sn::serial_sweep(disc, quad, q);
      },
      {1e-6, 100, false});
  ASSERT_TRUE(result.converged);
  check_against_golden("kobayashi_n8_s4_serial", result.phi, /*stride=*/1);
}

TEST(Golden, QuickstartParallelSolve) {
  // The `quickstart` example verbatim: Kobayashi 16³, 4³-cell patches,
  // S4, 4 ranks × 2 workers, coarsened replay. The parallel solver is
  // bitwise deterministic, so this snapshot also guards the engine path.
  const mesh::StructuredMesh m = mesh::make_kobayashi_mesh(16);
  const partition::StructuredBlockLayout layout(m.dims(), {4, 4, 4});
  const partition::CsrGraph cg = partition::cell_graph(m);
  const partition::PatchSet patches(partition::block_partition(layout),
                                    layout.num_patches(), &cg);
  const sn::CellXs xs =
      expand(sn::MaterialTable::kobayashi(), m.materials(), m.num_cells());
  const sn::StructuredDD disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(4);

  sn::SourceIterationResult result;
  comm::Cluster::run(4, [&](comm::Context& ctx) {
    sweep::SolverConfig config;
    config.num_workers = 2;
    config.cluster_grain = 32;
    config.use_coarsened_graph = true;
    const auto owner =
        partition::assign_contiguous(patches.num_patches(), ctx.size());
    sweep::SweepSolver solver(ctx, m, patches, owner, disc, quad, config);
    const auto r =
        sn::source_iteration(xs, solver.as_operator(), {1e-6, 100, false});
    if (ctx.rank().value() == 0) result = r;
  });
  ASSERT_TRUE(result.converged);
  check_against_golden("quickstart_n16_s4_parallel", result.phi,
                       /*stride=*/13);
}

TEST(Golden, CyclicTwistedLagSolve) {
  // Snapshot of the cycle-breaking path itself: the twisted column under
  // CyclePolicy::Lag. Guards cut selection, lag semantics and the
  // converged physics in one file.
  const mesh::TetMesh m = mesh::make_twisted_column_mesh();
  const sn::CellXs xs =
      expand(sn::MaterialTable::ball(), m.materials(), m.num_cells());
  const sn::TetStep disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  sn::SerialSweeper sweeper(disc, quad);
  ASSERT_GT(sweeper.cycle_stats().edges_cut, 0);
  const auto result = sn::source_iteration(
      xs, [&](const std::vector<double>& q) { return sweeper.sweep(q); },
      {1e-6, 200, false});
  ASSERT_TRUE(result.converged);
  check_against_golden("twisted_column_s2_lag", result.phi, /*stride=*/3);
}

TEST(Golden, ReflectingBoxKeff) {
  // k-eigenvalue snapshot on the boundary-coupling path: a heterogeneous
  // one-group box with three reflecting sides (an octant-symmetric core),
  // solved by the parallel power iteration on two ranks. Guards the
  // mirror-angle boundary store, the fission-source algebra and the
  // converged eigenvalue in one file.
  const mesh::StructuredMesh m = mesh::make_cube_mesh(6, 6.0);
  const std::int64_t n = m.num_cells();
  sn::FissionXs fission(1, n);
  fission.chi(0) = 1.0;
  sn::MultigroupXs xs_template(1, n);
  for (std::int64_t c = 0; c < n; ++c) {
    // Fissile center column, absorbing rim.
    const bool core = (c % 3) != 0;
    xs_template.sigma_t(0, c) = core ? 1.0 : 1.3;
    xs_template.sigma_s(0, 0, c) = core ? 0.5 : 0.4;
    fission.nu_sigma_f(0, c) = core ? 0.35 : 0.0;
  }
  sn::BoundarySpec bc;
  bc.side(mesh::FaceDir::XLo) = 1.0;
  bc.side(mesh::FaceDir::YLo) = 1.0;
  bc.side(mesh::FaceDir::ZLo) = 1.0;
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const partition::StructuredBlockLayout layout(m.dims(), {2, 2, 2});
  const partition::CsrGraph cg = partition::cell_graph(m);
  const partition::PatchSet ps(partition::block_partition(layout),
                               layout.num_patches(), &cg);

  sweep::EigenOptions options;
  options.max_outer_iterations = 500;  // near-critical boxes converge slowly
  options.k_tolerance = 1e-10;
  options.fission_tolerance = 1e-8;
  options.multigroup.inner = {1e-10, 500, false};

  sweep::EigenResult result;
  comm::Cluster::run(2, [&](comm::Context& ctx) {
    sn::MultigroupXs xs = xs_template;  // per-rank writable copy
    const sn::StructuredDD disc(m, xs.group_view(0), true, bc);
    sweep::PlanConfig pc;
    pc.cluster_grain = 16;
    pc.multigroup = &xs;
    const auto owner =
        partition::assign_contiguous(ps.num_patches(), ctx.size());
    const auto plan =
        sweep::SweepPlan::build(ctx, m, ps, owner, disc, quad, pc);
    const auto r = sweep::solve_k_eigenvalue(ctx, plan, xs, fission, options);
    if (ctx.rank().value() == 0) result = r;
  });
  ASSERT_TRUE(result.converged);
  check_against_golden("reflecting_box_keff_k", {result.k}, /*stride=*/1);
  check_against_golden("reflecting_box_keff_phi", result.phi[0],
                       /*stride=*/7);
}

TEST(Golden, ReactorTwoGroupKeff) {
  // The `reactor` example's physics: a two-group tetrahedral reactor core
  // (fissile center, reflector rim, vacuum boundary) solved by the
  // parallel power iteration. Guards the multigroup eigen path on
  // unstructured meshes.
  const mesh::TetMesh m = mesh::make_reactor_mesh(4, 4.0, 6.0);
  const std::int64_t n = m.num_cells();
  sn::MultigroupXs xs_template(2, n);
  sn::FissionXs fission(2, n);
  fission.chi(0) = 1.0;  // fast-born spectrum
  for (std::int64_t c = 0; c < n; ++c) {
    const bool core = m.material(CellId{c}) == mesh::kMatCore;
    xs_template.sigma_t(0, c) = core ? 0.6 : 0.5;
    xs_template.sigma_t(1, c) = core ? 1.0 : 1.2;
    xs_template.sigma_s(0, 0, c) = core ? 0.2 : 0.22;
    xs_template.sigma_s(0, 1, c) = core ? 0.25 : 0.25;  // downscatter
    xs_template.sigma_s(1, 1, c) = core ? 0.6 : 1.1;
    if (core) {
      fission.nu_sigma_f(0, c) = 0.08;
      fission.nu_sigma_f(1, c) = 0.5;
    }
  }
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const partition::CsrGraph cg = partition::cell_graph(m);
  const auto part = partition::partition_graph(cg, 4);
  const partition::PatchSet ps(part, 4, &cg);

  sweep::EigenOptions options;
  options.max_outer_iterations = 100;
  options.k_tolerance = 1e-9;
  options.fission_tolerance = 1e-7;
  options.multigroup.inner = {1e-9, 300, false};

  sweep::EigenResult result;
  comm::Cluster::run(2, [&](comm::Context& ctx) {
    sn::MultigroupXs xs = xs_template;  // per-rank writable copy
    const sn::TetStep disc(m, xs.group_view(0));
    sweep::PlanConfig pc;
    pc.cluster_grain = 16;
    pc.multigroup = &xs;
    const auto owner =
        partition::assign_contiguous(ps.num_patches(), ctx.size());
    const auto plan =
        sweep::SweepPlan::build(ctx, m, ps, owner, disc, quad, pc);
    const auto r = sweep::solve_k_eigenvalue(ctx, plan, xs, fission, options);
    if (ctx.rank().value() == 0) result = r;
  });
  ASSERT_TRUE(result.converged);
  check_against_golden("reactor_2g_keff_k", {result.k}, /*stride=*/1);
  check_against_golden("reactor_2g_keff_phi_fast", result.phi[0],
                       /*stride=*/11);
  check_against_golden("reactor_2g_keff_phi_thermal", result.phi[1],
                       /*stride=*/11);
}

}  // namespace
}  // namespace jsweep