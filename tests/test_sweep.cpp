// Integration tests for the parallel sweep component: the data-driven
// engine, the BSP baseline, the coarsened graph and KBA must all reproduce
// the serial reference exactly, under every configuration.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/graph_partition.hpp"
#include "partition/patch_set.hpp"
#include "sn/serial_sweep.hpp"
#include "sn/source_iteration.hpp"
#include "sweep/kba.hpp"
#include "sweep/solver.hpp"

namespace jsweep::sweep {
namespace {

TEST(LaggedFluxStore, SlotLifecycleAndCommit) {
  comm::Cluster::run(2, [&](comm::Context& ctx) {
    LaggedFluxStore store;
    EXPECT_TRUE(store.empty());
    store.add_slot(0, 100);
    store.add_slot(0, 200);
    store.add_slot(3, 100);  // same face, different angle = distinct slot
    EXPECT_EQ(store.num_slots(), 3);
    // First sweep reads the vacuum iterate.
    EXPECT_EQ(store.prev(0, 100), 0.0);
    // Each "rank" owns disjoint slots.
    if (ctx.rank().value() == 0) {
      store.stage(0, 100, 2.0);
      store.stage(0, 200, 4.0);
    } else {
      store.stage(3, 100, 8.0);
    }
    const double residual = store.commit(ctx);
    EXPECT_DOUBLE_EQ(residual, 8.0);  // identical on every rank
    EXPECT_DOUBLE_EQ(store.prev(0, 100), 2.0);
    EXPECT_DOUBLE_EQ(store.prev(0, 200), 4.0);
    EXPECT_DOUBLE_EQ(store.prev(3, 100), 8.0);
    // A second commit with closer values shrinks the residual.
    if (ctx.rank().value() == 0) {
      store.stage(0, 100, 2.5);
      store.stage(0, 200, 4.0);
    } else {
      store.stage(3, 100, 8.0);
    }
    EXPECT_DOUBLE_EQ(store.commit(ctx), 0.5);
  });
}

TEST(LaggedFluxStore, GroupStridedSlots) {
  // Multigroup: every (angle, face) slot carries one value per group,
  // staged and committed independently; the map API addresses group 0.
  comm::Cluster::run(1, [&](comm::Context& ctx) {
    LaggedFluxStore store;
    store.set_num_groups(3);
    EXPECT_EQ(store.num_groups(), 3);
    store.add_slot(0, 100);
    store.add_slot(1, 100);
    EXPECT_EQ(store.num_slots(), 2);
    const std::int32_t s0 = store.slot_index(0, 100);
    const std::int32_t s1 = store.slot_index(1, 100);
    for (int g = 0; g < 3; ++g) {
      EXPECT_EQ(store.prev_by_slot(s0, g), 0.0);
      store.stage_by_slot(s0, g, 1.0 + g);
      store.stage_by_slot(s1, g, 10.0 + g);
    }
    EXPECT_DOUBLE_EQ(store.commit(ctx), 12.0);
    for (int g = 0; g < 3; ++g) {
      EXPECT_DOUBLE_EQ(store.prev_by_slot(s0, g), 1.0 + g);
      EXPECT_DOUBLE_EQ(store.prev_by_slot(s1, g), 10.0 + g);
    }
    // Map-keyed convenience API == dense group-0 view.
    EXPECT_DOUBLE_EQ(store.prev(0, 100), 1.0);
    EXPECT_DOUBLE_EQ(store.prev(1, 100), 10.0);
    // The stride is fixed once slots exist.
    EXPECT_THROW(store.set_num_groups(2), CheckError);
  });
}

/// Shared structured fixture: Kobayashi 8³ mesh in 2³-cell patches.
struct StructuredCase {
  StructuredCase()
      : mesh(mesh::make_kobayashi_mesh(8)),
        layout({8, 8, 8}, {2, 2, 2}),
        graph(partition::cell_graph(mesh)),
        patches(partition::block_partition(layout), layout.num_patches(),
                &graph),
        xs(sn::expand(sn::MaterialTable::kobayashi(), mesh.materials(),
                      mesh.num_cells())),
        disc(mesh, xs),
        quad(sn::Quadrature::level_symmetric(2)),
        q(static_cast<std::size_t>(mesh.num_cells()), 0.25) {}

  std::vector<double> serial() const {
    return sn::serial_sweep(disc, quad, q);
  }

  mesh::StructuredMesh mesh;
  partition::StructuredBlockLayout layout;
  partition::CsrGraph graph;
  partition::PatchSet patches;
  sn::CellXs xs;
  sn::StructuredDD disc;
  sn::Quadrature quad;
  std::vector<double> q;
};

/// Shared unstructured fixture: small tetrahedral ball.
struct BallCase {
  BallCase()
      : mesh(mesh::make_ball_mesh(6, 3.0)),
        graph(partition::cell_graph(mesh)),
        part(partition::partition_graph(graph, 5)),
        patches(part, 5, &graph),
        xs(sn::expand(sn::MaterialTable::ball(), mesh.materials(),
                      mesh.num_cells())),
        disc(mesh, xs),
        quad(sn::Quadrature::level_symmetric(4)),
        q(static_cast<std::size_t>(mesh.num_cells()), 0.125) {}

  std::vector<double> serial() const {
    return sn::serial_sweep(disc, quad, q);
  }

  mesh::TetMesh mesh;
  partition::CsrGraph graph;
  std::vector<std::int32_t> part;
  partition::PatchSet patches;
  sn::CellXs xs;
  sn::TetStep disc;
  sn::Quadrature quad;
  std::vector<double> q;
};

template <class Case>
std::vector<double> run_parallel(const Case& cs, int ranks,
                                 SolverConfig config) {
  std::vector<double> result;
  std::mutex result_mutex;
  comm::Cluster::run(ranks, [&](comm::Context& ctx) {
    const auto owner = partition::assign_contiguous(
        cs.patches.num_patches(), ctx.size());
    SweepSolver solver(ctx, cs.mesh, cs.patches, owner, cs.disc, cs.quad,
                       config);
    const auto phi = solver.sweep(cs.q);
    if (ctx.rank().value() == 0) {
      const std::lock_guard<std::mutex> lock(result_mutex);
      result = phi;
    }
  });
  return result;
}

void expect_equal(const std::vector<double>& a, const std::vector<double>& b,
                  double tol = 1e-13) {
  ASSERT_EQ(a.size(), b.size());
  double scale = 0.0;
  for (const auto v : a) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_NEAR(a[i], b[i], tol * scale) << "cell " << i;
}

// ---------------------------------------------------------------------------
// Data-driven engine vs serial reference
// ---------------------------------------------------------------------------

TEST(SweepStructured, MatchesSerialSingleRank) {
  const StructuredCase cs;
  expect_equal(run_parallel(cs, 1, {}), cs.serial());
}

TEST(SweepStructured, MatchesSerialMultiRank) {
  const StructuredCase cs;
  SolverConfig cfg;
  cfg.num_workers = 3;
  expect_equal(run_parallel(cs, 4, cfg), cs.serial());
}

TEST(SweepBall, MatchesSerialSingleRank) {
  const BallCase cs;
  expect_equal(run_parallel(cs, 1, {}), cs.serial());
}

TEST(SweepBall, MatchesSerialMultiRank) {
  const BallCase cs;
  SolverConfig cfg;
  cfg.num_workers = 2;
  expect_equal(run_parallel(cs, 3, cfg), cs.serial());
}

// The result must be bitwise identical whatever the parallel configuration:
// the DAG fixes every operand and the reduction order is fixed.
TEST(SweepDeterminism, BitwiseIdenticalAcrossConfigurations) {
  const BallCase cs;
  const auto base = run_parallel(cs, 1, {});
  for (const int ranks : {2, 4}) {
    for (const int workers : {1, 3}) {
      SolverConfig cfg;
      cfg.num_workers = workers;
      const auto phi = run_parallel(cs, ranks, cfg);
      ASSERT_EQ(phi.size(), base.size());
      for (std::size_t i = 0; i < phi.size(); ++i)
        ASSERT_EQ(phi[i], base[i])
            << "ranks=" << ranks << " workers=" << workers << " cell=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Configuration sweeps (priorities, clustering, ablations)
// ---------------------------------------------------------------------------

using PriorityPair =
    std::pair<graph::PriorityStrategy, graph::PriorityStrategy>;

class SweepPriorities : public ::testing::TestWithParam<PriorityPair> {};

TEST_P(SweepPriorities, AllStrategiesMatchSerial) {
  const StructuredCase cs;
  SolverConfig cfg;
  cfg.patch_priority = GetParam().first;
  cfg.vertex_priority = GetParam().second;
  expect_equal(run_parallel(cs, 2, cfg), cs.serial());
}

INSTANTIATE_TEST_SUITE_P(
    Combos, SweepPriorities,
    ::testing::Values(
        PriorityPair{graph::PriorityStrategy::None,
                     graph::PriorityStrategy::None},
        PriorityPair{graph::PriorityStrategy::BFS,
                     graph::PriorityStrategy::BFS},
        PriorityPair{graph::PriorityStrategy::LDCP,
                     graph::PriorityStrategy::LDCP},
        PriorityPair{graph::PriorityStrategy::SLBD,
                     graph::PriorityStrategy::SLBD},
        PriorityPair{graph::PriorityStrategy::LDCP,
                     graph::PriorityStrategy::SLBD},
        PriorityPair{graph::PriorityStrategy::BFS,
                     graph::PriorityStrategy::SLBD}));

class SweepGrain : public ::testing::TestWithParam<int> {};

TEST_P(SweepGrain, AllClusterGrainsMatchSerial) {
  const BallCase cs;
  SolverConfig cfg;
  cfg.cluster_grain = GetParam();
  expect_equal(run_parallel(cs, 2, cfg), cs.serial());
}

INSTANTIATE_TEST_SUITE_P(Grains, SweepGrain,
                         ::testing::Values(1, 2, 8, 64, 4096));

TEST(SweepAblation, PatchSerializedStillCorrect) {
  const StructuredCase cs;
  SolverConfig cfg;
  cfg.patch_angle_parallelism = false;
  cfg.num_workers = 3;
  expect_equal(run_parallel(cs, 2, cfg), cs.serial());
}

// ---------------------------------------------------------------------------
// BSP engine
// ---------------------------------------------------------------------------

TEST(SweepBsp, MatchesSerial) {
  const StructuredCase cs;
  SolverConfig cfg;
  cfg.engine = EngineKind::Bsp;
  expect_equal(run_parallel(cs, 2, cfg), cs.serial());
}

TEST(SweepBsp, BallMatchesSerial) {
  const BallCase cs;
  SolverConfig cfg;
  cfg.engine = EngineKind::Bsp;
  cfg.num_workers = 2;
  expect_equal(run_parallel(cs, 2, cfg), cs.serial());
}

TEST(SweepBsp, DataDrivenUsesFewerGlobalSyncs) {
  // The data-driven engine needs one collective per sweep; BSP needs one
  // (plus a barrier) per superstep. Count supersteps to document the gap.
  const StructuredCase cs;
  std::atomic<std::int64_t> supersteps{0};
  comm::Cluster::run(2, [&](comm::Context& ctx) {
    SolverConfig cfg;
    cfg.engine = EngineKind::Bsp;
    const auto owner =
        partition::assign_contiguous(cs.patches.num_patches(), ctx.size());
    SweepSolver solver(ctx, cs.mesh, cs.patches, owner, cs.disc, cs.quad,
                       cfg);
    (void)solver.sweep(cs.q);
    if (ctx.rank().value() == 0)
      supersteps.store(solver.stats().bsp.supersteps);
  });
  EXPECT_GT(supersteps.load(), 3);
}

// ---------------------------------------------------------------------------
// Coarsened graph
// ---------------------------------------------------------------------------

TEST(SweepCoarsened, SecondSweepMatchesFirst) {
  const BallCase cs;
  std::vector<double> first;
  std::vector<double> second;
  std::vector<double> third;
  comm::Cluster::run(2, [&](comm::Context& ctx) {
    SolverConfig cfg;
    cfg.use_coarsened_graph = true;
    cfg.num_workers = 2;
    const auto owner =
        partition::assign_contiguous(cs.patches.num_patches(), ctx.size());
    SweepSolver solver(ctx, cs.mesh, cs.patches, owner, cs.disc, cs.quad,
                       cfg);
    const auto phi1 = solver.sweep(cs.q);  // DAG sweep, records clusters
    const auto phi2 = solver.sweep(cs.q);  // coarsened replay
    const auto phi3 = solver.sweep(cs.q);  // reusable across iterations
    if (ctx.rank().value() == 0) {
      first = phi1;
      second = phi2;
      third = phi3;
    }
  });
  expect_equal(second, first, 1e-15);
  expect_equal(third, first, 1e-15);
  expect_equal(first, cs.serial());
}

TEST(SweepCoarsened, StructuredMatchesSerial) {
  const StructuredCase cs;
  std::vector<double> coarse_phi;
  comm::Cluster::run(2, [&](comm::Context& ctx) {
    SolverConfig cfg;
    cfg.use_coarsened_graph = true;
    cfg.cluster_grain = 4;
    const auto owner =
        partition::assign_contiguous(cs.patches.num_patches(), ctx.size());
    SweepSolver solver(ctx, cs.mesh, cs.patches, owner, cs.disc, cs.quad,
                       cfg);
    (void)solver.sweep(cs.q);
    const auto phi = solver.sweep(cs.q);
    if (ctx.rank().value() == 0) coarse_phi = phi;
  });
  expect_equal(coarse_phi, cs.serial());
}

// ---------------------------------------------------------------------------
// KBA baseline
// ---------------------------------------------------------------------------

class SweepKba : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SweepKba, MatchesSerial) {
  const auto [px, py, zb] = GetParam();
  const StructuredCase cs;
  std::vector<double> kba_phi;
  comm::Cluster::run(px * py, [&](comm::Context& ctx) {
    KbaSolver kba(ctx, cs.disc, cs.quad, {px, py, zb});
    const auto phi = kba.sweep(cs.q);
    if (ctx.rank().value() == 0) kba_phi = phi;
  });
  expect_equal(kba_phi, cs.serial());
}

INSTANTIATE_TEST_SUITE_P(Grids, SweepKba,
                         ::testing::Values(std::tuple{1, 1, 4},
                                           std::tuple{2, 2, 2},
                                           std::tuple{4, 2, 8},
                                           std::tuple{2, 3, 1}));

// ---------------------------------------------------------------------------
// Full solves: source iteration through the parallel sweep
// ---------------------------------------------------------------------------

TEST(SweepSourceIteration, ParallelSolveMatchesSerialSolve) {
  const StructuredCase cs;

  const auto serial_result = sn::source_iteration(
      cs.xs,
      [&](const std::vector<double>& q) {
        return sn::serial_sweep(cs.disc, cs.quad, q);
      },
      {1e-7, 100, false});
  ASSERT_TRUE(serial_result.converged);

  std::vector<double> parallel_phi;
  int parallel_iters = 0;
  comm::Cluster::run(3, [&](comm::Context& ctx) {
    SolverConfig cfg;
    cfg.use_coarsened_graph = true;  // iterations 2+ on CG
    const auto owner =
        partition::assign_contiguous(cs.patches.num_patches(), ctx.size());
    SweepSolver solver(ctx, cs.mesh, cs.patches, owner, cs.disc, cs.quad,
                       cfg);
    const auto result =
        sn::source_iteration(cs.xs, solver.as_operator(), {1e-7, 100, false});
    EXPECT_TRUE(result.converged);
    if (ctx.rank().value() == 0) {
      parallel_phi = result.phi;
      parallel_iters = result.iterations;
    }
  });
  EXPECT_EQ(parallel_iters, serial_result.iterations);
  expect_equal(parallel_phi, serial_result.phi);
}

TEST(SweepStats, EngineCountsLookSane) {
  const StructuredCase cs;
  comm::Cluster::run(2, [&](comm::Context& ctx) {
    SolverConfig cfg;
    cfg.cluster_grain = 4;
    const auto owner =
        partition::assign_contiguous(cs.patches.num_patches(), ctx.size());
    SweepSolver solver(ctx, cs.mesh, cs.patches, owner, cs.disc, cs.quad,
                       cfg);
    (void)solver.sweep(cs.q);
    const auto& st = solver.stats().engine;
    // 8 angles × 32 local patches, at least one execution each.
    EXPECT_GE(st.executions, 8 * 32);
    EXPECT_GT(st.streams_remote + st.streams_local, 0);
    EXPECT_GT(st.worker_busy_seconds, 0.0);
  });
}

}  // namespace
}  // namespace jsweep::sweep
