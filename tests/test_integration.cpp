// Cross-module property and stress tests: random jagged partitions,
// recorded-cluster coarsening (Theorem 1 on real executions), solver
// variants, and comm-layer stress.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "comm/cluster.hpp"
#include "graph/coarsen.hpp"
#include "mesh/generators.hpp"
#include "mesh/refine.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/graph_partition.hpp"
#include "partition/patch_set.hpp"
#include "partition/rcb.hpp"
#include "sn/serial_sweep.hpp"
#include "sn/source_iteration.hpp"
#include "support/rng.hpp"
#include "sweep/solver.hpp"

namespace jsweep {
namespace {

/// Random (non-contiguous, jagged) cell→patch assignment: the hardest case
/// for partial computation — every patch interleaves with every other, so
/// programs must execute many times (the paper's Fig. 4 taken to the
/// extreme).
std::vector<std::int32_t> random_partition(std::int64_t cells, int patches,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int32_t> part(static_cast<std::size_t>(cells));
  for (auto& p : part)
    p = static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(patches)));
  // Ensure no patch is empty.
  for (int p = 0; p < patches; ++p)
    part[static_cast<std::size_t>(p)] = p;
  return part;
}

TEST(RandomPartitionSweep, JaggedPatchesMatchSerial) {
  const mesh::StructuredMesh m = mesh::make_cube_mesh(6, 6.0);
  sn::CellXs xs;
  const auto n = static_cast<std::size_t>(m.num_cells());
  xs.sigma_t.assign(n, 0.8);
  xs.sigma_s.assign(n, 0.3);
  xs.source.assign(n, 1.0);
  const sn::StructuredDD disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const std::vector<double> q(n, 0.5);
  const auto serial = sn::serial_sweep(disc, quad, q);

  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    const partition::CsrGraph cg = partition::cell_graph(m);
    const partition::PatchSet ps(random_partition(m.num_cells(), 5, seed), 5,
                                 &cg);
    std::vector<double> phi;
    comm::Cluster::run(2, [&](comm::Context& ctx) {
      sweep::SolverConfig config;
      config.num_workers = 2;
      config.cluster_grain = 4;
      const auto owner =
          partition::assign_contiguous(ps.num_patches(), ctx.size());
      sweep::SweepSolver solver(ctx, m, ps, owner, disc, quad, config);
      const auto result = solver.sweep(q);
      if (ctx.rank().value() == 0) phi = result;
    });
    ASSERT_EQ(phi.size(), serial.size());
    for (std::size_t c = 0; c < phi.size(); ++c)
      ASSERT_NEAR(phi[c], serial[c], 1e-13) << "seed " << seed;
  }
}

TEST(RandomPartitionSweep, ManyExecutionsPerProgram) {
  // With jagged patches, partial computation must show up as far more
  // program executions than programs.
  const mesh::StructuredMesh m = mesh::make_cube_mesh(6, 6.0);
  sn::CellXs xs;
  const auto n = static_cast<std::size_t>(m.num_cells());
  xs.sigma_t.assign(n, 0.8);
  xs.sigma_s.assign(n, 0.0);
  xs.source.assign(n, 1.0);
  const sn::StructuredDD disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const std::vector<double> q(n, 0.5);

  const partition::CsrGraph cg = partition::cell_graph(m);
  const partition::PatchSet ps(random_partition(m.num_cells(), 4, 3), 4, &cg);
  comm::Cluster::run(1, [&](comm::Context& ctx) {
    sweep::SolverConfig config;
    config.num_workers = 2;
    config.cluster_grain = 1000000;  // unbounded batches
    const auto owner = partition::assign_contiguous(4, 1);
    sweep::SweepSolver solver(ctx, m, ps, owner, disc, quad, config);
    (void)solver.sweep(q);
    // 4 patches × 8 angles programs, but far more executions.
    EXPECT_GT(solver.stats().engine.executions, 4 * 8 * 3);
  });
}

TEST(RecordedCoarsening, Theorem1OnRealExecution) {
  // Record clusters from an actual parallel execution and check the
  // coarsened graph of every program is acyclic (Theorem 1 with real,
  // scheduler-dependent clusterings rather than synthetic ones).
  const mesh::TetMesh m = mesh::make_ball_mesh(6, 3.0);
  const partition::CsrGraph cg = partition::cell_graph(m);
  const auto part = partition::partition_graph(cg, 4);
  const partition::PatchSet ps(part, 4, &cg);
  const sn::CellXs xs =
      expand(sn::MaterialTable::ball(), m.materials(), m.num_cells());
  const sn::TetStep disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const std::vector<double> q(static_cast<std::size_t>(m.num_cells()), 0.5);

  comm::Cluster::run(1, [&](comm::Context& ctx) {
    // Build the solver pieces manually to reach the recorded programs.
    sweep::SweepShared shared;
    shared.disc = &disc;
    shared.patches = &ps;
    shared.quad = &quad;
    shared.q_per_ster = &q;

    core::Engine engine(ctx, {2, core::TerminationMode::KnownWorkload});
    std::vector<std::unique_ptr<sweep::SweepTaskData>> data;
    std::vector<sweep::SweepPatchProgram*> programs;
    for (int a = 0; a < quad.num_angles(); ++a) {
      for (int p = 0; p < 4; ++p) {
        data.push_back(std::make_unique<sweep::SweepTaskData>(
            graph::build_patch_task_graph(m, ps, PatchId{p},
                                          quad.angle(a).dir, AngleId{a}),
            graph::PriorityStrategy::SLBD, disc, ps, quad.angle(a)));
        sweep::SweepProgramOptions opts;
        opts.cluster_grain = 8;
        opts.record_clusters = true;
        auto prog = std::make_unique<sweep::SweepPatchProgram>(
            *data.back(), shared, opts);
        programs.push_back(prog.get());
        engine.add_program(std::move(prog), -a * 100.0 - p, true);
      }
    }
    engine.set_routes(partition::assign_contiguous(4, 1));
    engine.run();

    int checked = 0;
    for (const auto* prog : programs) {
      if (prog->recorded_num_clusters() <= 1) continue;
      const graph::CoarsenedGraph cgr =
          graph::coarsen(prog->data().graph().local,
                         prog->recorded_clusters(),
                         prog->recorded_num_clusters());
      EXPECT_TRUE(cgr.coarse.is_acyclic());
      ++checked;
    }
    EXPECT_GT(checked, 4);
  });
}

TEST(SolverVariants, RcbPartitionAndSfcOwnersMatchSerial) {
  const mesh::TetMesh m = mesh::make_ball_mesh(6, 3.0);
  const auto centroids = partition::cell_centroids(m);
  const auto part = partition::partition_rcb(centroids, 6);
  const partition::CsrGraph cg = partition::cell_graph(m);
  const partition::PatchSet ps(part, 6, &cg);
  const sn::CellXs xs =
      expand(sn::MaterialTable::ball(), m.materials(), m.num_cells());
  const sn::TetStep disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const std::vector<double> q(static_cast<std::size_t>(m.num_cells()), 0.5);
  const auto serial = sn::serial_sweep(disc, quad, q);

  std::vector<double> phi;
  comm::Cluster::run(3, [&](comm::Context& ctx) {
    sweep::SolverConfig config;
    config.num_workers = 2;
    const auto owner = partition::assign_by_sfc(
        patch_centroids(ps, centroids), ctx.size());
    sweep::SweepSolver solver(ctx, m, ps, owner, disc, quad, config);
    const auto result = solver.sweep(q);
    if (ctx.rank().value() == 0) phi = result;
  });
  for (std::size_t c = 0; c < phi.size(); ++c)
    ASSERT_NEAR(phi[c], serial[c], 1e-13);
}

TEST(SolverVariants, RefinedMeshSolveConverges) {
  // Weak-scaling building block: refine the ball once and solve.
  const mesh::TetMesh coarse = mesh::make_ball_mesh(4, 2.0);
  const mesh::TetMesh m = mesh::refine_uniform(coarse);
  const partition::CsrGraph cg = partition::cell_graph(m);
  const auto part = partition::partition_graph(cg, 8);
  const partition::PatchSet ps(part, 8, &cg);
  const sn::CellXs xs =
      expand(sn::MaterialTable::ball(), m.materials(), m.num_cells());
  const sn::TetStep disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);

  comm::Cluster::run(2, [&](comm::Context& ctx) {
    sweep::SolverConfig config;
    config.num_workers = 2;
    config.use_coarsened_graph = true;
    const auto owner = partition::assign_contiguous(8, ctx.size());
    sweep::SweepSolver solver(ctx, m, ps, owner, disc, quad, config);
    const auto result =
        sn::source_iteration(xs, solver.as_operator(), {1e-5, 100, false});
    EXPECT_TRUE(result.converged);
  });
}

TEST(CommStress, ManyRanksManyMessages) {
  // Flood the mailboxes from every rank to every rank and verify counts.
  constexpr int kRanks = 8;
  constexpr int kPerPair = 200;
  comm::Cluster::run(kRanks, [&](comm::Context& ctx) {
    Rng rng(static_cast<std::uint64_t>(ctx.rank().value()) + 99);
    for (int i = 0; i < kPerPair * (kRanks - 1); ++i) {
      const int dst = static_cast<int>(rng.below(kRanks - 1));
      const int target = dst >= ctx.rank().value() ? dst + 1 : dst;
      comm::ByteWriter w;
      w.write(std::int32_t{i});
      ctx.send(RankId{target}, comm::kTagUser, w.take());
    }
    // Everyone receives exactly what was sent to them globally.
    const std::int64_t sent = ctx.traffic().basic_sent;
    const std::int64_t total_sent = ctx.allreduce_sum(sent);
    EXPECT_EQ(total_sent, static_cast<std::int64_t>(kRanks) * kPerPair *
                              (kRanks - 1));
    std::int64_t received = 0;
    while (ctx.pending_messages() > 0 ||
           ctx.allreduce_sum(received) < total_sent) {
      while (auto msg = ctx.try_recv()) ++received;
      if (received >= total_sent) break;  // single-rank fast exit
      ctx.wait_message(std::chrono::microseconds(100));
      // Re-check global progress at most a bounded number of times is not
      // needed: counts are conserved, so this loop terminates.
    }
    SUCCEED();
  });
}

TEST(GridConvergence, UniformMediumFluxConverges) {
  // On a resolution-independent problem (uniform absorber + scattering,
  // uniform source), the DD solution must approach the fine-grid answer:
  // projected L2 error vs the n=32 reference shrinks as the mesh refines.
  // (The Kobayashi geometry is unsuitable here: its material boundaries
  // snap to the grid, so each resolution solves a different problem.)
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const auto solve = [&](int n) {
    const mesh::StructuredMesh m = mesh::make_cube_mesh(n, 10.0);
    sn::CellXs xs;
    const auto cells = static_cast<std::size_t>(m.num_cells());
    xs.sigma_t.assign(cells, 0.6);
    xs.sigma_s.assign(cells, 0.2);
    xs.source.assign(cells, 1.0);
    const sn::StructuredDD disc(m, xs, /*fixup=*/false);
    return sn::source_iteration(
               xs,
               [&](const std::vector<double>& q) {
                 return serial_sweep(disc, quad, q);
               },
               {1e-9, 300, false})
        .phi;
  };
  const auto phi8 = solve(8);
  const auto phi16 = solve(16);
  const auto phi32 = solve(32);

  // Project a fine solution onto an n-cell grid by averaging children.
  const auto project = [](const std::vector<double>& fine, int nf, int nc) {
    const int ratio = nf / nc;
    std::vector<double> coarse(
        static_cast<std::size_t>(nc) * nc * nc, 0.0);
    const double w = 1.0 / (ratio * ratio * ratio);
    for (int k = 0; k < nf; ++k)
      for (int j = 0; j < nf; ++j)
        for (int i = 0; i < nf; ++i)
          coarse[static_cast<std::size_t>(
              i / ratio +
              nc * (j / ratio + static_cast<std::size_t>(nc) * (k / ratio)))] +=
              fine[static_cast<std::size_t>(
                  i + nf * (j + static_cast<std::size_t>(nf) * k))] *
              w;
    return coarse;
  };
  const auto l2 = [](const std::vector<double>& a,
                     const std::vector<double>& b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
      sum += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(sum / static_cast<double>(a.size()));
  };
  const double err8 = l2(phi8, project(phi32, 32, 8));
  const double err16 = l2(project(phi16, 16, 8), project(phi32, 32, 8));
  EXPECT_LT(err16, err8);
}

}  // namespace
}  // namespace jsweep
