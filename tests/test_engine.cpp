// Tests for the data-driven engine, the BSP engine and the thread pool,
// using small synthetic patch-programs (no physics).

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>

#include "comm/cluster.hpp"
#include "core/bsp_engine.hpp"
#include "core/engine.hpp"
#include "core/thread_pool.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace jsweep::core {
namespace {

comm::Bytes encode_vertices(const std::vector<std::int32_t>& vs) {
  comm::ByteWriter w;
  w.write_vector(vs);
  return w.take();
}

std::vector<std::int32_t> decode_vertices(const comm::Bytes& b) {
  comm::ByteReader r(b);
  return r.read_vector<std::int32_t>();
}

/// Generic data-driven test program: a miniature sweep over an abstract
/// local DAG with remote edges. Records executed vertices into a shared
/// (mutex-guarded) global log for assertions.
class TestDagProgram final : public PatchProgram {
 public:
  struct Vertex {
    std::int32_t initial_count = 0;
    std::vector<std::int32_t> local_out;
    /// (dst patch, dst vertex); task tag carries over.
    std::vector<std::pair<std::int32_t, std::int32_t>> remote_out;
  };

  struct Log {
    std::mutex mutex;
    std::vector<std::pair<ProgramKey, std::int32_t>> executed;
  };

  TestDagProgram(PatchId p, TaskTag t, std::vector<Vertex> vertices,
                 Log* log = nullptr, int grain = 1 << 30)
      : PatchProgram(p, t),
        vertices_(std::move(vertices)),
        log_(log),
        grain_(grain) {}

  void init() override {
    counts_.clear();
    ready_.clear();
    for (std::size_t v = 0; v < vertices_.size(); ++v) {
      counts_.push_back(vertices_[v].initial_count);
      if (vertices_[v].initial_count == 0)
        ready_.push_back(static_cast<std::int32_t>(v));
    }
    done_ = 0;
    pending_.clear();
    out_buffer_.clear();
  }

  void input(const Stream& s) override {
    for (const auto v : decode_vertices(s.data)) {
      JSWEEP_CHECK(counts_[static_cast<std::size_t>(v)] > 0);
      if (--counts_[static_cast<std::size_t>(v)] == 0) ready_.push_back(v);
    }
  }

  void compute() override {
    int in_batch = 0;
    while (!ready_.empty() && in_batch < grain_) {
      const auto v = ready_.back();
      ready_.pop_back();
      ++in_batch;
      ++done_;
      if (log_ != nullptr) {
        const std::lock_guard<std::mutex> lock(log_->mutex);
        log_->executed.emplace_back(key(), v);
      }
      for (const auto w : vertices_[static_cast<std::size_t>(v)].local_out)
        if (--counts_[static_cast<std::size_t>(w)] == 0) ready_.push_back(w);
      for (const auto& [dst_patch, dst_vertex] :
           vertices_[static_cast<std::size_t>(v)].remote_out)
        out_buffer_[dst_patch].push_back(dst_vertex);
    }
    for (auto& [dst, vs] : out_buffer_) {
      if (vs.empty()) continue;
      Stream s;
      s.src = key();
      s.dst = {PatchId{dst}, key().task};
      s.data = encode_vertices(vs);
      vs.clear();
      pending_.push_back(std::move(s));
    }
  }

  std::optional<Stream> output() override {
    if (pending_.empty()) return std::nullopt;
    Stream s = std::move(pending_.back());
    pending_.pop_back();
    return s;
  }

  bool vote_to_halt() override { return ready_.empty(); }

  [[nodiscard]] std::int64_t remaining_work() const override {
    return static_cast<std::int64_t>(vertices_.size()) - done_;
  }
  [[nodiscard]] std::int64_t total_work() const override {
    return static_cast<std::int64_t>(vertices_.size());
  }

 private:
  std::vector<Vertex> vertices_;
  Log* log_;
  int grain_;
  std::vector<std::int32_t> counts_;
  std::vector<std::int32_t> ready_;
  std::map<std::int32_t, std::vector<std::int32_t>> out_buffer_;
  std::vector<Stream> pending_;
  std::int64_t done_ = 0;
};

TEST(ThreadPool, ParallelForCoversIndexSpace) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, InlineWhenZeroThreads) {
  ThreadPool pool(0);
  std::int64_t sum = 0;  // safe: inline execution
  pool.parallel_for(10, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(50,
                                 [&](std::int64_t i) {
                                   if (i == 17)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.parallel_for(100, [&](std::int64_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950);
  }
}

/// Chain across patches: patch i vertex 0 feeds patch i+1 vertex 0.
/// Each rank owns a contiguous slice of patches.
void run_chain(int ranks, int workers, int patches) {
  comm::Cluster::run(ranks, [&](comm::Context& ctx) {
    Engine engine(ctx, {workers, TerminationMode::KnownWorkload});
    std::vector<RankId> owner(static_cast<std::size_t>(patches));
    for (int p = 0; p < patches; ++p)
      owner[static_cast<std::size_t>(p)] =
          RankId{static_cast<int>(static_cast<std::int64_t>(p) * ranks /
                                  patches)};
    for (int p = 0; p < patches; ++p) {
      if (owner[static_cast<std::size_t>(p)] != ctx.rank()) continue;
      TestDagProgram::Vertex v;
      v.initial_count = (p == 0) ? 0 : 1;
      if (p + 1 < patches) v.remote_out.emplace_back(p + 1, 0);
      engine.add_program(std::make_unique<TestDagProgram>(
                             PatchId{p}, TaskTag{0},
                             std::vector<TestDagProgram::Vertex>{v}),
                         /*priority=*/0.0, /*initially_active=*/true);
    }
    engine.set_routes(owner);
    engine.run();
    EXPECT_GT(engine.stats().executions, 0);
  });
}

TEST(Engine, ChainSingleRank) { run_chain(1, 2, 10); }
TEST(Engine, ChainMultiRank) { run_chain(4, 2, 23); }
TEST(Engine, ChainManyWorkers) { run_chain(2, 6, 40); }

TEST(Engine, ZigZagPartialComputationNoDeadlock) {
  // Fig. 4 of the paper: interleaved dependencies between two patches force
  // each patch-program to execute multiple times.
  //   A0 → B0 → A1 → B1 → A2 → B2
  comm::Cluster::run(2, [](comm::Context& ctx) {
    Engine engine(ctx, {2, TerminationMode::KnownWorkload});
    TestDagProgram::Log log;
    const std::vector<RankId> owner{RankId{0}, RankId{1}};
    if (ctx.rank().value() == 0) {
      std::vector<TestDagProgram::Vertex> a(3);
      a[0].initial_count = 0;
      a[0].remote_out.emplace_back(1, 0);  // A0 → B0
      a[1].initial_count = 1;              // needs B0
      a[1].remote_out.emplace_back(1, 1);  // A1 → B1
      a[2].initial_count = 1;              // needs B1
      a[2].remote_out.emplace_back(1, 2);  // A2 → B2
      engine.add_program(
          std::make_unique<TestDagProgram>(PatchId{0}, TaskTag{0}, a, &log),
          0.0, true);
    } else {
      std::vector<TestDagProgram::Vertex> b(3);
      b[0].initial_count = 1;              // needs A0
      b[0].remote_out.emplace_back(0, 1);  // B0 → A1
      b[1].initial_count = 1;
      b[1].remote_out.emplace_back(0, 2);  // B1 → A2
      b[2].initial_count = 1;
      engine.add_program(
          std::make_unique<TestDagProgram>(PatchId{1}, TaskTag{0}, b, &log),
          0.0, true);
    }
    engine.set_routes(owner);
    engine.run();
    // Each rank executed its program at least 3 times (once per vertex
    // becoming ready) — partial computation in action.
    EXPECT_GE(engine.stats().executions, 3);
  });
}

TEST(Engine, MultipleTasksPerPatch) {
  // Two independent tasks on the same patch run under distinct keys.
  comm::Cluster::run(1, [](comm::Context& ctx) {
    Engine engine(ctx, {2, TerminationMode::KnownWorkload});
    TestDagProgram::Log log;
    for (int t = 0; t < 4; ++t) {
      std::vector<TestDagProgram::Vertex> vs(2);
      vs[0].initial_count = 0;
      vs[0].local_out.push_back(1);
      vs[1].initial_count = 1;
      engine.add_program(std::make_unique<TestDagProgram>(
                             PatchId{0}, TaskTag{t}, vs, &log),
                         -t, true);
    }
    engine.set_routes({RankId{0}});
    engine.run();
    EXPECT_EQ(log.executed.size(), 8u);
  });
}

TEST(Engine, DuplicateProgramRejected) {
  comm::Cluster::run(1, [](comm::Context& ctx) {
    Engine engine(ctx, {1, TerminationMode::KnownWorkload});
    auto make = [] {
      return std::make_unique<TestDagProgram>(
          PatchId{0}, TaskTag{0},
          std::vector<TestDagProgram::Vertex>{{0, {}, {}}});
    };
    engine.add_program(make(), 0.0, true);
    EXPECT_THROW(engine.add_program(make(), 0.0, true), CheckError);
  });
}

TEST(Engine, MisroutedStreamThrows) {
  // A stream to a patch that no rank's engine knows must fail loudly.
  EXPECT_THROW(
      comm::Cluster::run(1,
                   [](comm::Context& ctx) {
                     Engine engine(ctx, {1, TerminationMode::KnownWorkload});
                     std::vector<TestDagProgram::Vertex> vs(1);
                     vs[0].initial_count = 0;
                     vs[0].remote_out.emplace_back(7, 0);  // no patch 7
                     engine.add_program(
                         std::make_unique<TestDagProgram>(PatchId{0},
                                                          TaskTag{0}, vs),
                         0.0, true);
                     // Route patch 7 to ourselves but never register it.
                     engine.set_routes(std::vector<RankId>(8, RankId{0}));
                     engine.run();
                   }),
      CheckError);
}

TEST(Engine, PriorityOrdersSingleWorker) {
  // One worker: strictly higher-priority source programs must execute
  // before lower-priority ones queued at the same time.
  comm::Cluster::run(1, [](comm::Context& ctx) {
    Engine engine(ctx, {1, TerminationMode::KnownWorkload});
    TestDagProgram::Log log;
    for (int p = 0; p < 6; ++p) {
      std::vector<TestDagProgram::Vertex> vs(1);
      vs[0].initial_count = 0;
      engine.add_program(std::make_unique<TestDagProgram>(
                             PatchId{p}, TaskTag{0}, vs, &log),
                         /*priority=*/static_cast<double>(p), true);
    }
    engine.set_routes(std::vector<RankId>(6, RankId{0}));
    engine.run();
    ASSERT_EQ(log.executed.size(), 6u);
    for (std::size_t i = 0; i < 6; ++i)
      EXPECT_EQ(log.executed[i].first.patch, PatchId{5 - static_cast<int>(i)});
  });
}

TEST(Engine, KnownWorkloadStatsAreCoherent) {
  comm::Cluster::run(2, [](comm::Context& ctx) {
    Engine engine(ctx, {2, TerminationMode::KnownWorkload});
    const std::vector<RankId> owner{RankId{0}, RankId{1}};
    const int me = ctx.rank().value();
    std::vector<TestDagProgram::Vertex> vs(4);
    for (int v = 0; v < 4; ++v) {
      vs[static_cast<std::size_t>(v)].initial_count = (me == 0) ? 0 : 1;
      if (me == 0)
        vs[static_cast<std::size_t>(v)].remote_out.emplace_back(1, v);
    }
    engine.add_program(
        std::make_unique<TestDagProgram>(PatchId{me}, TaskTag{0}, vs), 0.0,
        true);
    engine.set_routes(owner);
    engine.run();
    if (me == 0) {
      EXPECT_GE(engine.stats().streams_remote, 1);
      EXPECT_GE(engine.stats().messages_sent, 1);
      EXPECT_GT(engine.stats().stream_bytes, 0);
    }
    EXPECT_GT(engine.stats().elapsed_seconds, 0.0);
  });
}

/// Chain link that burns measurable wall time: waits for one stream
/// (patch 0 starts immediately), spins `spin_seconds`, then feeds the next
/// patch. Forces a serial schedule so one of two workers must sit idle.
class SpinRelayProgram final : public PatchProgram {
 public:
  SpinRelayProgram(PatchId p, bool wait_for_stream, std::int32_t dest,
                   double spin_seconds)
      : PatchProgram(p, TaskTag{0}),
        wait_for_stream_(wait_for_stream),
        dest_(dest),
        spin_seconds_(spin_seconds) {}

  void init() override {
    armed_ = !wait_for_stream_;
    fired_ = false;
    out_.clear();
  }
  void input(const Stream&) override { armed_ = true; }
  void compute() override {
    if (fired_ || !armed_) return;
    fired_ = true;
    WallTimer t;
    while (t.seconds() < spin_seconds_) {
    }
    if (dest_ >= 0)
      out_.push_back(
          Stream{key(), {PatchId{dest_}, TaskTag{0}}, comm::Bytes(8)});
  }
  std::optional<Stream> output() override {
    if (out_.empty()) return std::nullopt;
    Stream s = std::move(out_.back());
    out_.pop_back();
    return s;
  }
  bool vote_to_halt() override { return true; }
  [[nodiscard]] std::int64_t remaining_work() const override {
    return fired_ ? 0 : 1;
  }
  [[nodiscard]] std::int64_t total_work() const override { return 1; }

 private:
  bool wait_for_stream_;
  std::int32_t dest_;
  double spin_seconds_;
  bool armed_ = false;
  bool fired_ = false;
  std::vector<Stream> out_;
};

TEST(Engine, BusyIdleAccountingCoversElapsed) {
  // Regression test for EngineStats time accounting: every instant of a
  // worker's loop lifetime is charged to busy or idle, so
  // busy + idle ≈ elapsed × num_workers — the only unaccounted windows
  // are thread spawn/join. The serial chain keeps one of the two workers
  // idle, so missing idle accounting would show up as a large deficit.
  comm::Cluster::run(1, [](comm::Context& ctx) {
    constexpr int kWorkers = 2;
    constexpr int kPatches = 5;
    constexpr double kSpin = 15e-3;
    Engine engine(ctx, {kWorkers, TerminationMode::KnownWorkload});
    for (int p = 0; p < kPatches; ++p)
      engine.add_program(
          std::make_unique<SpinRelayProgram>(
              PatchId{p}, /*wait_for_stream=*/p != 0,
              /*dest=*/p + 1 < kPatches ? p + 1 : -1, kSpin),
          /*priority=*/0.0, /*initially_active=*/true);
    engine.set_routes(std::vector<RankId>(kPatches, RankId{0}));
    engine.run();

    const EngineStats& s = engine.stats();
    const double accounted = s.worker_busy_seconds + s.worker_idle_seconds;
    const double expected = s.elapsed_seconds * kWorkers;
    EXPECT_GE(s.elapsed_seconds, kPatches * kSpin);
    EXPECT_GT(s.worker_busy_seconds, 0.0);
    // The chain serializes ~all compute, so the second worker's wait time
    // must be accounted as idle.
    EXPECT_GT(s.worker_idle_seconds, 0.3 * s.elapsed_seconds);
    EXPECT_NEAR(accounted, expected, 0.15 * expected + 0.02);
  });
}

TEST(Engine, StealStormEveryProgramExecutesOnce) {
  // N-worker steal storm: hundreds of tiny independent programs land in
  // the workers' queues in one burst, drain unevenly, and idle workers
  // steal from the loaded ones. The correctness bar does not depend on
  // who ran what: every program's single vertex executes exactly once,
  // the run terminates, and the stats stay coherent.
  comm::Cluster::run(1, [](comm::Context& ctx) {
    constexpr int kWorkers = 4;
    constexpr int kPrograms = 256;
    EngineConfig cfg{kWorkers, TerminationMode::KnownWorkload};
    cfg.steal_spin_rounds = 128;
    cfg.scheduler_seed = 7;
    Engine engine(ctx, cfg);
    TestDagProgram::Log log;
    for (int p = 0; p < kPrograms; ++p) {
      std::vector<TestDagProgram::Vertex> vs(1);
      vs[0].initial_count = 0;
      engine.add_program(std::make_unique<TestDagProgram>(
                             PatchId{p}, TaskTag{0}, vs, &log),
                         /*priority=*/static_cast<double>(p % 7),
                         /*initially_active=*/true);
    }
    engine.set_routes(std::vector<RankId>(kPrograms, RankId{0}));
    engine.run();

    ASSERT_EQ(log.executed.size(), static_cast<std::size_t>(kPrograms));
    std::vector<int> seen(kPrograms, 0);
    for (const auto& [key, v] : log.executed) {
      EXPECT_EQ(v, 0);
      ++seen[static_cast<std::size_t>(key.patch.value())];
    }
    for (int p = 0; p < kPrograms; ++p)
      EXPECT_EQ(seen[static_cast<std::size_t>(p)], 1) << "patch " << p;

    const EngineStats& s = engine.stats();
    EXPECT_EQ(s.executions, kPrograms);
    EXPECT_LE(s.steals, s.steal_attempts);
    EXPECT_GE(s.steal_attempts, 0);
    // Every instant of worker lifetime is charged busy or idle — steal
    // scans and bounded spins land in the idle bucket, never busy.
    const double accounted = s.worker_busy_seconds + s.worker_idle_seconds;
    EXPECT_NEAR(accounted, s.elapsed_seconds * kWorkers,
                0.15 * s.elapsed_seconds * kWorkers + 0.02);
  });
}

TEST(Engine, SetProgramEnabledGatesExecution) {
  // Disabled programs are never queued and contribute nothing to the
  // known-workload commitment; re-enabling restores them on the next run.
  comm::Cluster::run(1, [](comm::Context& ctx) {
    constexpr int kPrograms = 6;
    Engine engine(ctx, {2, TerminationMode::KnownWorkload});
    TestDagProgram::Log log;
    for (int p = 0; p < kPrograms; ++p) {
      std::vector<TestDagProgram::Vertex> vs(1);
      vs[0].initial_count = 0;
      engine.add_program(std::make_unique<TestDagProgram>(
                             PatchId{p}, TaskTag{0}, vs, &log),
                         0.0, true);
    }
    engine.set_routes(std::vector<RankId>(kPrograms, RankId{0}));
    for (int p = 1; p < kPrograms; p += 2)
      engine.set_program_enabled(ProgramKey{PatchId{p}, TaskTag{0}}, false);
    engine.run();
    {
      const std::lock_guard<std::mutex> lock(log.mutex);
      ASSERT_EQ(log.executed.size(), 3u);
      for (const auto& [key, v] : log.executed)
        EXPECT_EQ(key.patch.value() % 2, 0);
      log.executed.clear();
    }
    // Re-enable the odd half: run() re-inits and executes all six.
    for (int p = 1; p < kPrograms; p += 2)
      engine.set_program_enabled(ProgramKey{PatchId{p}, TaskTag{0}}, true);
    engine.run();
    EXPECT_EQ(log.executed.size(), static_cast<std::size_t>(kPrograms));
  });
}

TEST(Engine, ParallelChainsStreamDeliveryRacesSteals) {
  // Many chains advance concurrently under 4 workers with stealing on, so
  // master-side stream delivery (re-queueing a program that just received
  // input) races worker-side steal scans taking entries from the same
  // queues. Every chain vertex must fire exactly once, whichever worker
  // ends up running it.
  comm::Cluster::run(1, [](comm::Context& ctx) {
    constexpr int kWorkers = 4;
    constexpr int kChains = 12;
    constexpr int kLen = 9;
    constexpr int kPatches = kChains * kLen;
    EngineConfig cfg{kWorkers, TerminationMode::KnownWorkload};
    cfg.steal_spin_rounds = 256;
    cfg.scheduler_seed = 42;
    Engine engine(ctx, cfg);
    TestDagProgram::Log log;
    for (int c = 0; c < kChains; ++c)
      for (int i = 0; i < kLen; ++i) {
        const int p = c * kLen + i;
        TestDagProgram::Vertex v;
        v.initial_count = (i == 0) ? 0 : 1;
        if (i + 1 < kLen) v.remote_out.emplace_back(p + 1, 0);
        engine.add_program(
            std::make_unique<TestDagProgram>(
                PatchId{p}, TaskTag{0},
                std::vector<TestDagProgram::Vertex>{v}, &log),
            /*priority=*/static_cast<double>(kLen - i),
            /*initially_active=*/true);
      }
    engine.set_routes(std::vector<RankId>(kPatches, RankId{0}));
    engine.run();

    ASSERT_EQ(log.executed.size(), static_cast<std::size_t>(kPatches));
    std::vector<int> seen(kPatches, 0);
    for (const auto& [key, v] : log.executed)
      ++seen[static_cast<std::size_t>(key.patch.value())];
    for (int p = 0; p < kPatches; ++p)
      EXPECT_EQ(seen[static_cast<std::size_t>(p)], 1) << "patch " << p;
    const EngineStats& s = engine.stats();
    EXPECT_LE(s.steals, s.steal_attempts);
    EXPECT_GE(s.executions, kPatches);
  });
}

TEST(Engine, RunTwiceReinitializes) {
  // The same engine can run multiple sweeps; init() re-runs each time.
  comm::Cluster::run(1, [](comm::Context& ctx) {
    Engine engine(ctx, {2, TerminationMode::KnownWorkload});
    std::vector<TestDagProgram::Vertex> vs(3);
    vs[0] = {0, {1}, {}};
    vs[1] = {1, {2}, {}};
    vs[2] = {1, {}, {}};
    engine.add_program(
        std::make_unique<TestDagProgram>(PatchId{0}, TaskTag{0}, vs), 0.0,
        true);
    engine.set_routes({RankId{0}});
    engine.run();
    engine.run();  // must terminate again, not hang
    SUCCEED();
  });
}

/// Random-walk token program for Safra-mode termination: workload unknown.
class WanderProgram final : public PatchProgram {
 public:
  WanderProgram(PatchId p, int npatches, std::atomic<std::int64_t>* hops)
      : PatchProgram(p, TaskTag{0}),
        npatches_(npatches),
        hops_(hops),
        rng_(77 + static_cast<std::uint64_t>(p.value())) {}

  void init() override {
    if (key().patch.value() == 0) pending_hops_ = 12;  // seed one walker
  }
  void input(const Stream& s) override {
    comm::ByteReader r(s.data);
    pending_hops_ += r.read<std::int32_t>();
  }
  void compute() override {
    while (pending_hops_ > 0) {
      hops_->fetch_add(1, std::memory_order_relaxed);
      const std::int32_t remaining = --pending_hops_;
      if (remaining > 0) {
        // Forward the remaining hops to a random other patch.
        const auto dst = static_cast<std::int32_t>(
            rng_.below(static_cast<std::uint64_t>(npatches_)));
        comm::ByteWriter w;
        w.write(remaining);
        out_.push_back(Stream{key(), {PatchId{dst}, TaskTag{0}}, w.take()});
        pending_hops_ = 0;
      }
    }
  }
  std::optional<Stream> output() override {
    if (out_.empty()) return std::nullopt;
    Stream s = std::move(out_.back());
    out_.pop_back();
    return s;
  }
  bool vote_to_halt() override { return pending_hops_ == 0; }
  [[nodiscard]] std::int64_t remaining_work() const override { return 0; }

 private:
  int npatches_;
  std::atomic<std::int64_t>* hops_;
  Rng rng_;
  std::int32_t pending_hops_ = 0;
  std::vector<Stream> out_;
};

TEST(Engine, SafraModeTerminatesUnknownWorkload) {
  std::atomic<std::int64_t> hops{0};
  constexpr int kPatches = 6;
  comm::Cluster::run(3, [&](comm::Context& ctx) {
    Engine engine(ctx, {2, TerminationMode::Safra});
    std::vector<RankId> owner(kPatches);
    for (int p = 0; p < kPatches; ++p)
      owner[static_cast<std::size_t>(p)] = RankId{p % 3};
    for (int p = 0; p < kPatches; ++p)
      if (owner[static_cast<std::size_t>(p)] == ctx.rank())
        engine.add_program(
            std::make_unique<WanderProgram>(PatchId{p}, kPatches, &hops), 0.0,
            true);
    engine.set_routes(owner);
    engine.run();
  });
  EXPECT_EQ(hops.load(), 12);
}

// ---------------------------------------------------------------------------
// BSP engine
// ---------------------------------------------------------------------------

TEST(BspEngine, ChainTakesManySupersteps) {
  static constexpr int kPatches = 12;
  comm::Cluster::run(2, [](comm::Context& ctx) {
    BspEngine engine(ctx, {2});
    std::vector<RankId> owner(kPatches);
    for (int p = 0; p < kPatches; ++p)
      owner[static_cast<std::size_t>(p)] = RankId{p % 2};
    for (int p = 0; p < kPatches; ++p) {
      if (owner[static_cast<std::size_t>(p)] != ctx.rank()) continue;
      TestDagProgram::Vertex v;
      v.initial_count = (p == 0) ? 0 : 1;
      if (p + 1 < kPatches) v.remote_out.emplace_back(p + 1, 0);
      engine.add_program(std::make_unique<TestDagProgram>(
          PatchId{p}, TaskTag{0},
          std::vector<TestDagProgram::Vertex>{v}));
    }
    engine.set_routes(owner);
    engine.run();
    // A K-long dependency chain needs at least K supersteps under BSP —
    // the cost the data-driven engine avoids.
    EXPECT_GE(engine.stats().supersteps, kPatches);
  });
}

TEST(BspEngine, LocalStreamsWaitForSuperstepBoundary) {
  // Within one superstep a local dependency must NOT resolve (BSP
  // semantics): a 2-vertex chain inside one rank still takes 2 supersteps.
  comm::Cluster::run(1, [](comm::Context& ctx) {
    BspEngine engine(ctx, {1});
    TestDagProgram::Vertex v0;
    v0.initial_count = 0;
    v0.remote_out.emplace_back(1, 0);  // cross-patch but same rank
    TestDagProgram::Vertex v1;
    v1.initial_count = 1;
    engine.add_program(std::make_unique<TestDagProgram>(
        PatchId{0}, TaskTag{0}, std::vector<TestDagProgram::Vertex>{v0}));
    engine.add_program(std::make_unique<TestDagProgram>(
        PatchId{1}, TaskTag{0}, std::vector<TestDagProgram::Vertex>{v1}));
    engine.set_routes({RankId{0}, RankId{0}});
    engine.run();
    EXPECT_GE(engine.stats().supersteps, 2);
    EXPECT_EQ(engine.stats().streams_local, 1);
  });
}

}  // namespace
}  // namespace jsweep::core
