// Tests for multigroup transport: cascade construction, group coupling
// physics, and equivalence with one-group solves in degenerate cases.

#include <gtest/gtest.h>

#include <limits>

#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/patch_set.hpp"
#include "sn/multigroup.hpp"
#include "sn/serial_sweep.hpp"
#include "sweep/solver.hpp"

namespace jsweep::sn {
namespace {

TEST(MultigroupXs, CascadeStructure) {
  const mesh::StructuredMesh m = mesh::make_cube_mesh(4, 4.0);
  CellXs one = expand(MaterialTable::pure_absorber(1.0, 2.0), {},
                      m.num_cells());
  const MultigroupXs xs = MultigroupXs::cascade(
      MaterialTable::pure_absorber(1.0, 2.0), {}, m.num_cells(), 3, 0.7);
  EXPECT_EQ(xs.groups(), 3);
  EXPECT_EQ(xs.cells(), m.num_cells());
  // Source only in the fastest group.
  EXPECT_DOUBLE_EQ(xs.source(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(xs.source(1, 0), 0.0);
  // No upscatter in a cascade.
  EXPECT_FALSE(xs.has_upscatter());
  // σt grows with group index.
  EXPECT_GT(xs.sigma_t(2, 0), xs.sigma_t(0, 0));
}

TEST(MultigroupXs, GroupViewExtractsDiagonal) {
  MultigroupXs xs(2, 4);
  for (std::int64_t c = 0; c < 4; ++c) {
    xs.sigma_t(0, c) = 1.0;
    xs.sigma_t(1, c) = 2.0;
    xs.sigma_s(0, 0, c) = 0.3;
    xs.sigma_s(0, 1, c) = 0.2;
    xs.sigma_s(1, 1, c) = 0.4;
    xs.source(0, c) = 5.0;
  }
  const CellXs g0 = xs.group_view(0);
  EXPECT_DOUBLE_EQ(g0.sigma_t[0], 1.0);
  EXPECT_DOUBLE_EQ(g0.sigma_s[0], 0.3);  // within-group only
  EXPECT_DOUBLE_EQ(g0.source[0], 5.0);
  const CellXs g1 = xs.group_view(1);
  EXPECT_DOUBLE_EQ(g1.sigma_s[0], 0.4);
  EXPECT_DOUBLE_EQ(g1.source[0], 0.0);
}

TEST(MultigroupXs, UpscatterDetected) {
  MultigroupXs xs(2, 2);
  EXPECT_FALSE(xs.has_upscatter());
  xs.sigma_s(1, 0, 0) = 0.1;
  EXPECT_TRUE(xs.has_upscatter());
}

struct SmallProblem {
  SmallProblem()
      : mesh(mesh::make_cube_mesh(6, 6.0)),
        quad(Quadrature::level_symmetric(2)) {}

  /// Serial sweep factory for group views of `xs`.
  GroupSweepFactory serial_factory(const MultigroupXs& xs) {
    return [&](int g) -> SweepOperator {
      // One StructuredDD per group (σt differs per group). Keep them
      // alive for the duration of the solve.
      auto disc = std::make_shared<StructuredDD>(mesh, xs.group_view(g));
      return [disc, this](const std::vector<double>& q) {
        return serial_sweep(*disc, quad, q);
      };
    };
  }

  mesh::StructuredMesh mesh;
  Quadrature quad;
};

TEST(Multigroup, OneGroupDegeneratesToSourceIteration) {
  SmallProblem p;
  const MaterialTable table({{1.0, 0.4, 3.0}});
  const CellXs one = expand(table, {}, p.mesh.num_cells());
  MultigroupXs xs(1, p.mesh.num_cells());
  for (std::int64_t c = 0; c < p.mesh.num_cells(); ++c) {
    xs.sigma_t(0, c) = 1.0;
    xs.sigma_s(0, 0, c) = 0.4;
    xs.source(0, c) = 3.0;
  }
  const StructuredDD disc(p.mesh, one);
  const auto reference = source_iteration(
      one,
      [&](const std::vector<double>& q) {
        return serial_sweep(disc, p.quad, q);
      },
      {1e-8, 300, false});

  MultigroupOptions opts;
  opts.inner = {1e-8, 300, false};
  const auto result = solve_multigroup(xs, p.serial_factory(xs), opts);
  ASSERT_TRUE(result.converged);
  ASSERT_EQ(result.phi.size(), 1u);
  for (std::size_t c = 0; c < reference.phi.size(); ++c)
    EXPECT_NEAR(result.phi[0][c], reference.phi[c],
                1e-6 * (1.0 + reference.phi[c]));
}

TEST(Multigroup, DownscatterCascadePopulatesLowerGroups) {
  SmallProblem p;
  const MultigroupXs xs = MultigroupXs::cascade(
      MaterialTable({{0.8, 0.5, 1.0}}), {}, p.mesh.num_cells(), 3, 0.5);
  MultigroupOptions opts;
  opts.inner = {1e-7, 200, false};
  const auto result = solve_multigroup(xs, p.serial_factory(xs), opts);
  ASSERT_TRUE(result.converged);
  // Pure downscatter: one outer pass suffices.
  EXPECT_EQ(result.outer_iterations, 1);
  // Every group carries flux, fed only through the cascade.
  for (int g = 0; g < 3; ++g) {
    double total = 0.0;
    for (const auto phi : result.phi[static_cast<std::size_t>(g)])
      total += phi;
    EXPECT_GT(total, 0.0) << "group " << g;
  }
  // Flux magnitude decreases down the cascade (sources only in group 0
  // and each transfer loses particles to absorption).
  double g0 = 0.0;
  double g2 = 0.0;
  for (std::int64_t c = 0; c < p.mesh.num_cells(); ++c) {
    g0 += result.phi[0][static_cast<std::size_t>(c)];
    g2 += result.phi[2][static_cast<std::size_t>(c)];
  }
  EXPECT_GT(g0, g2);
}

TEST(Multigroup, UpscatterRequiresOuterIterations) {
  SmallProblem p;
  MultigroupXs xs(2, p.mesh.num_cells());
  for (std::int64_t c = 0; c < p.mesh.num_cells(); ++c) {
    xs.sigma_t(0, c) = 1.0;
    xs.sigma_t(1, c) = 1.0;
    xs.sigma_s(0, 0, c) = 0.2;
    xs.sigma_s(0, 1, c) = 0.3;  // down
    xs.sigma_s(1, 1, c) = 0.2;
    xs.sigma_s(1, 0, c) = 0.2;  // up
    xs.source(0, c) = 1.0;
  }
  MultigroupOptions opts;
  opts.inner = {1e-7, 200, false};
  opts.outer_tolerance = 1e-6;
  const auto result = solve_multigroup(xs, p.serial_factory(xs), opts);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.outer_iterations, 1);
}

TEST(Multigroup, ParallelSweepOperatorMatchesSerial) {
  // Multigroup through the JSweep engine equals multigroup through serial
  // sweeps.
  SmallProblem p;
  const MultigroupXs xs = MultigroupXs::cascade(
      MaterialTable({{0.9, 0.45, 2.0}}), {}, p.mesh.num_cells(), 2, 0.6);
  MultigroupOptions opts;
  opts.inner = {1e-7, 200, false};
  const auto serial = solve_multigroup(xs, p.serial_factory(xs), opts);

  const partition::StructuredBlockLayout layout(p.mesh.dims(), {3, 3, 3});
  const partition::CsrGraph cg = partition::cell_graph(p.mesh);
  const partition::PatchSet patches(partition::block_partition(layout),
                                    layout.num_patches(), &cg);

  std::vector<std::vector<double>> parallel_phi;
  comm::Cluster::run(2, [&](comm::Context& ctx) {
    // Per-group discretizations and solvers, built once.
    std::vector<std::shared_ptr<StructuredDD>> discs;
    std::vector<std::shared_ptr<sweep::SweepSolver>> solvers;
    const auto owner =
        partition::assign_contiguous(patches.num_patches(), ctx.size());
    for (int g = 0; g < xs.groups(); ++g) {
      discs.push_back(
          std::make_shared<StructuredDD>(p.mesh, xs.group_view(g)));
      sweep::SolverConfig config;
      config.num_workers = 2;
      solvers.push_back(std::make_shared<sweep::SweepSolver>(
          ctx, p.mesh, patches, owner, *discs.back(), p.quad, config));
    }
    const auto result = solve_multigroup(
        xs,
        [&](int g) -> SweepOperator {
          return solvers[static_cast<std::size_t>(g)]->as_operator();
        },
        opts);
    if (ctx.rank().value() == 0) parallel_phi = result.phi;
  });

  ASSERT_EQ(parallel_phi.size(), serial.phi.size());
  for (std::size_t g = 0; g < parallel_phi.size(); ++g)
    for (std::size_t c = 0; c < parallel_phi[g].size(); ++c)
      ASSERT_NEAR(parallel_phi[g][c], serial.phi[g][c], 1e-10)
          << "group " << g << " cell " << c;
}

// ---------------------------------------------------------------------------
// MultigroupXs validation
// ---------------------------------------------------------------------------

TEST(MultigroupXs, ValidationAcceptsWellFormed) {
  const MultigroupXs xs = MultigroupXs::cascade(
      MaterialTable({{1.0, 0.5, 2.0}}), {}, 8, 3, 0.6);
  EXPECT_NO_THROW(xs.validate());
}

TEST(MultigroupXs, ValidationRejectsNegativeScattering) {
  MultigroupXs xs(2, 4);
  for (std::int64_t c = 0; c < 4; ++c) xs.sigma_t(0, c) = 1.0;
  xs.sigma_s(0, 1, 2) = -0.1;
  EXPECT_THROW(xs.validate(), CheckError);
}

TEST(MultigroupXs, ValidationRejectsNonFinite) {
  MultigroupXs xs(2, 4);
  xs.sigma_t(1, 3) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(xs.validate(), CheckError);
  MultigroupXs xs2(1, 2);
  xs2.source(0, 0) = std::numeric_limits<double>::infinity();
  EXPECT_THROW(xs2.validate(), CheckError);
}

TEST(MultigroupXs, ValidationRejectsSupercriticalScatteringRow) {
  // Σ_to σ_s[g→to] > σ_t[g]: scattering ratio above one diverges.
  MultigroupXs xs(2, 2);
  for (std::int64_t c = 0; c < 2; ++c) {
    xs.sigma_t(0, c) = 1.0;
    xs.sigma_t(1, c) = 1.0;
    xs.sigma_s(0, 0, c) = 0.7;
    xs.sigma_s(0, 1, c) = 0.5;  // row sum 1.2 > σ_t
  }
  EXPECT_THROW(xs.validate(), CheckError);
}

TEST(MultigroupXs, ValidationAcceptsPureScatteringRow) {
  // Boundary case: Σ_to σ_s[g→to] == σ_t[g] exactly (pure scattering, no
  // absorption) is physical and must validate — including when the row sum
  // accumulates rounding, e.g. 10 × 0.1 vs 1.0. The check allows a small
  // relative slack above σ_t rather than demanding <=.
  MultigroupXs exact(2, 2);
  for (std::int64_t c = 0; c < 2; ++c) {
    exact.sigma_t(0, c) = 1.0;
    exact.sigma_t(1, c) = 1.0;
    exact.sigma_s(0, 0, c) = 0.25;
    exact.sigma_s(0, 1, c) = 0.75;  // row sum == σ_t exactly
    exact.sigma_s(1, 1, c) = 1.0;   // pure within-group scattering
  }
  EXPECT_NO_THROW(exact.validate());

  // 10 × 0.1 = 1.0000000000000002 > 1.0 in binary64: rounding alone must
  // not reject a physically critical (not supercritical) medium.
  MultigroupXs rounded(10, 1);
  for (int g = 0; g < 10; ++g) {
    rounded.sigma_t(g, 0) = 1.0;
    for (int to = 0; to < 10; ++to) rounded.sigma_s(g, to, 0) = 0.1;
  }
  EXPECT_NO_THROW(rounded.validate());

  // A genuinely supercritical row still fails past the tolerance.
  MultigroupXs bad(1, 1);
  bad.sigma_t(0, 0) = 1.0;
  bad.sigma_s(0, 0, 0) = 1.0 + 1e-9;
  EXPECT_THROW(bad.validate(), CheckError);
}

TEST(MultigroupXs, UpscatterMatrixRoundTrips) {
  // σ_s[from→to] storage is asymmetric: every (from, to, cell) entry must
  // round-trip independently, upscatter included.
  MultigroupXs xs(3, 5);
  const auto value = [](int from, int to, std::int64_t c) {
    return 0.01 * (from + 1) + 0.1 * (to + 1) +
           static_cast<double>(c) * 1e-3;
  };
  for (std::int64_t c = 0; c < 5; ++c)
    for (int from = 0; from < 3; ++from)
      for (int to = 0; to < 3; ++to)
        xs.sigma_s(from, to, c) = value(from, to, c);
  for (std::int64_t c = 0; c < 5; ++c)
    for (int from = 0; from < 3; ++from)
      for (int to = 0; to < 3; ++to)
        EXPECT_DOUBLE_EQ(xs.sigma_s(from, to, c), value(from, to, c))
            << from << "→" << to << " cell " << c;
  EXPECT_TRUE(xs.has_upscatter());
}

// ---------------------------------------------------------------------------
// Sweep-pass driver (solve_multigroup_sweeps)
// ---------------------------------------------------------------------------

TEST(MultigroupSweeps, OneGroupBitwiseEqualsSourceIteration) {
  // G = 1 must degenerate to plain source iteration bit-for-bit: same q
  // construction (emission_density), same sweeps, same error metric.
  SmallProblem p;
  const MaterialTable table({{1.0, 0.4, 3.0}});
  const CellXs one = expand(table, {}, p.mesh.num_cells());
  MultigroupXs xs(1, p.mesh.num_cells());
  for (std::int64_t c = 0; c < p.mesh.num_cells(); ++c) {
    xs.sigma_t(0, c) = 1.0;
    xs.sigma_s(0, 0, c) = 0.4;
    xs.source(0, c) = 3.0;
  }
  const StructuredDD disc(p.mesh, one);
  const auto reference = source_iteration(
      one,
      [&](const std::vector<double>& q) {
        return serial_sweep(disc, p.quad, q);
      },
      {1e-8, 300, false});

  MultigroupOptions opts;
  opts.inner = {1e-8, 300, false};
  const auto result = solve_multigroup_sweeps(
      xs, sequential_sweep_pass(xs, p.serial_factory(xs)), opts);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.pass_iterations, reference.iterations);
  EXPECT_EQ(result.outer_iterations, 1);
  ASSERT_EQ(result.phi.size(), 1u);
  for (std::size_t c = 0; c < reference.phi.size(); ++c)
    ASSERT_EQ(result.phi[0][c], reference.phi[c]) << "cell " << c;
}

TEST(MultigroupSweeps, DownscatterConvergesInOneOuter) {
  SmallProblem p;
  const MultigroupXs xs = MultigroupXs::cascade(
      MaterialTable({{0.8, 0.5, 1.0}}), {}, p.mesh.num_cells(), 3, 0.5);
  MultigroupOptions opts;
  opts.inner = {1e-7, 200, false};
  const auto result = solve_multigroup_sweeps(
      xs, sequential_sweep_pass(xs, p.serial_factory(xs)), opts);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.outer_iterations, 1);
  EXPECT_GT(result.pass_iterations, 1);
  // Agrees with the classic converged-inner Gauss-Seidel scheme.
  const auto classic = solve_multigroup(xs, p.serial_factory(xs), opts);
  for (int g = 0; g < 3; ++g)
    for (std::int64_t c = 0; c < p.mesh.num_cells(); ++c)
      ASSERT_NEAR(result.phi[static_cast<std::size_t>(g)]
                            [static_cast<std::size_t>(c)],
                  classic.phi[static_cast<std::size_t>(g)]
                             [static_cast<std::size_t>(c)],
                  1e-5 * (1.0 + classic.phi[static_cast<std::size_t>(g)]
                                           [static_cast<std::size_t>(c)]))
          << "group " << g << " cell " << c;
}

TEST(MultigroupSweeps, UpscatterConvergesAcrossOuters) {
  SmallProblem p;
  MultigroupXs xs(2, p.mesh.num_cells());
  for (std::int64_t c = 0; c < p.mesh.num_cells(); ++c) {
    xs.sigma_t(0, c) = 1.0;
    xs.sigma_t(1, c) = 1.0;
    xs.sigma_s(0, 0, c) = 0.2;
    xs.sigma_s(0, 1, c) = 0.3;  // down
    xs.sigma_s(1, 1, c) = 0.2;
    xs.sigma_s(1, 0, c) = 0.2;  // up
    xs.source(0, c) = 1.0;
  }
  MultigroupOptions opts;
  opts.inner = {1e-8, 200, false};
  opts.outer_tolerance = 1e-7;
  const auto result = solve_multigroup_sweeps(
      xs, sequential_sweep_pass(xs, p.serial_factory(xs)), opts);
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.outer_iterations, 1);
  const auto classic = solve_multigroup(xs, p.serial_factory(xs), opts);
  for (int g = 0; g < 2; ++g)
    for (std::int64_t c = 0; c < p.mesh.num_cells(); ++c)
      ASSERT_NEAR(result.phi[static_cast<std::size_t>(g)]
                            [static_cast<std::size_t>(c)],
                  classic.phi[static_cast<std::size_t>(g)]
                             [static_cast<std::size_t>(c)],
                  1e-4 * (1.0 + classic.phi[static_cast<std::size_t>(g)]
                                           [static_cast<std::size_t>(c)]))
          << "group " << g << " cell " << c;
}

// ---------------------------------------------------------------------------
// Group-pipelined parallel solver
// ---------------------------------------------------------------------------

struct ParallelProblem {
  ParallelProblem()
      : mesh(mesh::make_cube_mesh(6, 6.0)),
        quad(Quadrature::level_symmetric(2)),
        layout(mesh.dims(), {3, 3, 3}),
        cg(partition::cell_graph(mesh)),
        patches(partition::block_partition(layout), layout.num_patches(),
                &cg) {}

  mesh::StructuredMesh mesh;
  Quadrature quad;
  partition::StructuredBlockLayout layout;
  partition::CsrGraph cg;
  partition::PatchSet patches;
};

/// Run solve_multigroup on the parallel solver and return rank 0's φ.
std::vector<std::vector<double>> parallel_multigroup(
    ParallelProblem& p, const MultigroupXs& xs, const MultigroupOptions& opts,
    bool pipelined, sweep::EngineKind engine = sweep::EngineKind::DataDriven,
    bool coarsened = false, int ranks = 2) {
  std::vector<std::vector<double>> phi;
  const StructuredDD disc(p.mesh, xs.group_view(0));
  comm::Cluster::run(ranks, [&](comm::Context& ctx) {
    sweep::SolverConfig config;
    config.engine = engine;
    config.num_workers = 2;
    config.multigroup = &xs;
    config.group_pipelining = pipelined;
    config.use_coarsened_graph = coarsened;
    const auto owner =
        partition::assign_contiguous(p.patches.num_patches(), ctx.size());
    sweep::SweepSolver solver(ctx, p.mesh, p.patches, owner, disc, p.quad,
                              config);
    const auto result = solver.solve_multigroup(opts);
    EXPECT_TRUE(result.converged);
    if (ctx.rank().value() == 0) phi = result.phi;
  });
  return phi;
}

TEST(MultigroupPipelined, MatchesSerialSweepsDriver) {
  ParallelProblem p;
  const MultigroupXs xs = MultigroupXs::cascade(
      MaterialTable({{0.9, 0.45, 2.0}}), {}, p.mesh.num_cells(), 3, 0.6);
  MultigroupOptions opts;
  opts.inner = {1e-7, 200, false};

  SmallProblem serial_p;
  const auto serial = solve_multigroup_sweeps(
      xs, sequential_sweep_pass(xs, serial_p.serial_factory(xs)), opts);
  const auto parallel = parallel_multigroup(p, xs, opts, /*pipelined=*/true);

  ASSERT_EQ(parallel.size(), serial.phi.size());
  for (std::size_t g = 0; g < parallel.size(); ++g)
    for (std::size_t c = 0; c < parallel[g].size(); ++c)
      ASSERT_NEAR(parallel[g][c], serial.phi[g][c],
                  1e-12 * (1.0 + serial.phi[g][c]))
          << "group " << g << " cell " << c;
}

TEST(MultigroupPipelined, BitwiseEqualsGroupBarriered) {
  // The pipelined engine run computes the exact iterates of the barriered
  // per-group runs — scheduling freedom must not change a single bit.
  ParallelProblem p;
  const MultigroupXs xs = MultigroupXs::cascade(
      MaterialTable({{0.9, 0.45, 2.0}}), {}, p.mesh.num_cells(), 3, 0.6);
  MultigroupOptions opts;
  opts.inner = {1e-7, 200, false};

  const auto pipelined = parallel_multigroup(p, xs, opts, true);
  const auto barriered = parallel_multigroup(p, xs, opts, false);
  ASSERT_EQ(pipelined.size(), barriered.size());
  for (std::size_t g = 0; g < pipelined.size(); ++g)
    for (std::size_t c = 0; c < pipelined[g].size(); ++c)
      ASSERT_EQ(pipelined[g][c], barriered[g][c])
          << "group " << g << " cell " << c;
}

TEST(MultigroupPipelined, OneGroupBitwiseEqualsSingleGroupSolver) {
  // A G = 1 multigroup build must reproduce the classic single-group
  // parallel solve bit-for-bit (same programs, same engine schedule
  // semantics, same collection order).
  ParallelProblem p;
  const MaterialTable table({{1.0, 0.45, 2.5}});
  const CellXs one = expand(table, {}, p.mesh.num_cells());
  MultigroupXs xs(1, p.mesh.num_cells());
  for (std::int64_t c = 0; c < p.mesh.num_cells(); ++c) {
    xs.sigma_t(0, c) = 1.0;
    xs.sigma_s(0, 0, c) = 0.45;
    xs.source(0, c) = 2.5;
  }
  MultigroupOptions opts;
  opts.inner = {1e-7, 200, false};

  std::vector<double> single;
  const StructuredDD disc(p.mesh, one);
  comm::Cluster::run(2, [&](comm::Context& ctx) {
    sweep::SolverConfig config;
    config.num_workers = 2;
    const auto owner =
        partition::assign_contiguous(p.patches.num_patches(), ctx.size());
    sweep::SweepSolver solver(ctx, p.mesh, p.patches, owner, disc, p.quad,
                              config);
    const auto result =
        source_iteration(one, solver.as_operator(), {1e-7, 200, false});
    EXPECT_TRUE(result.converged);
    if (ctx.rank().value() == 0) single = result.phi;
  });

  const auto multi = parallel_multigroup(p, xs, opts, /*pipelined=*/true);
  ASSERT_EQ(multi.size(), 1u);
  for (std::size_t c = 0; c < single.size(); ++c)
    ASSERT_EQ(multi[0][c], single[c]) << "cell " << c;
}

TEST(MultigroupPipelined, BspAndCoarsenedMatchDataDriven) {
  ParallelProblem p;
  const MultigroupXs xs = MultigroupXs::cascade(
      MaterialTable({{0.8, 0.4, 1.5}}), {}, p.mesh.num_cells(), 2, 0.55);
  MultigroupOptions opts;
  opts.inner = {1e-7, 200, false};

  const auto dd = parallel_multigroup(p, xs, opts, true);
  const auto bsp =
      parallel_multigroup(p, xs, opts, true, sweep::EngineKind::Bsp);
  const auto coarse = parallel_multigroup(
      p, xs, opts, true, sweep::EngineKind::DataDriven, /*coarsened=*/true);
  for (std::size_t g = 0; g < dd.size(); ++g)
    for (std::size_t c = 0; c < dd[g].size(); ++c) {
      ASSERT_NEAR(bsp[g][c], dd[g][c], 1e-12 * (1.0 + dd[g][c]))
          << "bsp group " << g << " cell " << c;
      ASSERT_NEAR(coarse[g][c], dd[g][c], 1e-12 * (1.0 + dd[g][c]))
          << "coarsened group " << g << " cell " << c;
    }
}

}  // namespace
}  // namespace jsweep::sn
