// k-eigenvalue + boundary-condition suite (ctest label `eigen`): the
// power iteration (sweep/eigen.hpp) and the reflecting/albedo boundary
// coupling it rides on. Anchors: the analytic infinite-medium eigenvalue
// k∞ = νΣ_f / (Σ_t − Σ_s) to 1e-12 on an all-reflecting box, bitwise
// serial/parallel and cross-engine agreement of k and φ, schedule
// perturbation (scheduler seeds × work stealing) invariance, and plan
// reuse across all outer iterations (zero task-graph rebuilds).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/patch_set.hpp"
#include "sn/boundary.hpp"
#include "sn/fission.hpp"
#include "sn/multigroup.hpp"
#include "sn/serial_sweep.hpp"
#include "support/check.hpp"
#include "sweep/eigen.hpp"
#include "sweep/solver.hpp"

namespace jsweep {
namespace {

constexpr double kTol = 1e-12;

// ---------------------------------------------------------------------------
// FissionXs properties
// ---------------------------------------------------------------------------

TEST(FissionXs, ValidateRejectsFissionFreeInput) {
  sn::FissionXs f(2, 4);
  f.chi(0) = 1.0;  // valid spectrum, but every νΣ_f is zero
  EXPECT_THROW(f.validate(), CheckError);
  f.nu_sigma_f(1, 2) = 0.05;
  EXPECT_NO_THROW(f.validate());
}

TEST(FissionXs, ValidateRejectsBadSpectrumAndEntries) {
  {
    sn::FissionXs f(2, 2);
    f.nu_sigma_f(0, 0) = 0.1;
    f.chi(0) = 0.7;
    f.chi(1) = 0.2;  // sums to 0.9
    EXPECT_THROW(f.validate(), CheckError);
    f.chi(1) = 0.3;
    EXPECT_NO_THROW(f.validate());
  }
  {
    sn::FissionXs f(1, 2);
    f.chi(0) = 1.0;
    f.nu_sigma_f(0, 1) = -0.2;
    EXPECT_THROW(f.validate(), CheckError);
    f.nu_sigma_f(0, 1) = std::nan("");
    EXPECT_THROW(f.validate(), CheckError);
    f.nu_sigma_f(0, 1) = 0.2;
    EXPECT_NO_THROW(f.validate());
  }
  {
    sn::FissionXs f(2, 1);
    f.nu_sigma_f(0, 0) = 0.1;
    f.chi(0) = 2.0;
    f.chi(1) = -1.0;  // sums to 1 but entries are not probabilities
    EXPECT_THROW(f.validate(), CheckError);
  }
}

TEST(FissionXs, ProductionAccumulatesInGroupOrder) {
  sn::FissionXs f(2, 3);
  f.chi(0) = 1.0;
  for (std::int64_t c = 0; c < 3; ++c) {
    f.nu_sigma_f(0, c) = 0.1 * static_cast<double>(c + 1);
    f.nu_sigma_f(1, c) = 0.02 * static_cast<double>(c + 1);
  }
  const std::vector<std::vector<double>> phi{{1.0, 2.0, 3.0},
                                             {10.0, 20.0, 30.0}};
  const auto s = f.production(phi);
  ASSERT_EQ(s.size(), 3u);
  for (std::int64_t c = 0; c < 3; ++c) {
    const auto i = static_cast<std::size_t>(c);
    // The documented order: group 0's term first, then group 1's.
    EXPECT_EQ(s[i], f.nu_sigma_f(0, c) * phi[0][i] +
                        f.nu_sigma_f(1, c) * phi[1][i]);
  }
}

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

/// Non-uniform per-steradian source (same shape the equivalence suite
/// uses) so scheduling bugs cannot cancel by symmetry.
std::vector<double> test_source(std::int64_t cells) {
  std::vector<double> q(static_cast<std::size_t>(cells));
  for (std::int64_t c = 0; c < cells; ++c)
    q[static_cast<std::size_t>(c)] = 0.3 + 0.01 * static_cast<double>(c % 7);
  return q;
}

partition::PatchSet make_patches(const mesh::StructuredMesh& m,
                                 const partition::CsrGraph& cg, int blocks) {
  const partition::StructuredBlockLayout layout(m.dims(),
                                                {blocks, blocks, blocks});
  return partition::PatchSet(partition::block_partition(layout),
                             layout.num_patches(), &cg);
}

/// Uniform single-group fissile medium: Σ_t = 1, Σ_s = 0.5, νΣ_f = 0.3,
/// so k∞ = νΣ_f / (Σ_t − Σ_s) = 0.6 exactly — on an all-reflecting box
/// the flat flux solves the discrete equations exactly, making the
/// analytic k∞ a 1e-12-tight anchor for the whole chain.
struct InfiniteMedium {
  sn::MultigroupXs xs{1, 1};
  sn::FissionXs fission{1, 1};
  explicit InfiniteMedium(std::int64_t cells, double nu_sigma_f = 0.3)
      : xs(1, cells), fission(1, cells) {
    for (std::int64_t c = 0; c < cells; ++c) {
      xs.sigma_t(0, c) = 1.0;
      xs.sigma_s(0, 0, c) = 0.5;
      fission.nu_sigma_f(0, c) = nu_sigma_f;
    }
    fission.chi(0) = 1.0;
  }
};

/// Heterogeneous 2-group fissile box for the cross-engine/seed tests: per
/// -cell σ_t pattern, downscatter 0→1, thermal fission.
struct TwoGroupCore {
  sn::MultigroupXs xs{2, 1};
  sn::FissionXs fission{2, 1};
  explicit TwoGroupCore(std::int64_t cells) : xs(2, cells), fission(2, cells) {
    for (std::int64_t c = 0; c < cells; ++c) {
      const double bump = 0.05 * static_cast<double>(c % 3);
      xs.sigma_t(0, c) = 0.9 + bump;
      xs.sigma_t(1, c) = 1.2 + bump;
      xs.sigma_s(0, 0, c) = 0.3;
      xs.sigma_s(0, 1, c) = 0.3;  // downscatter
      xs.sigma_s(1, 1, c) = 0.5;
      fission.nu_sigma_f(0, c) = 0.05;
      fission.nu_sigma_f(1, c) = 0.4;
    }
    fission.chi(0) = 1.0;  // fast-born spectrum
  }
};

/// Serial-reference pass factory: fresh per-group StructuredSerialSweeper
/// instances each invocation (so each outer iteration restarts from
/// zeroed boundary iterates, matching the parallel driver's fresh
/// sessions), persistent across the passes of one transport solve.
std::function<sn::MultigroupSweepPass()> serial_pass_factory(
    const mesh::StructuredMesh& m, const sn::MultigroupXs& xs,
    const sn::Quadrature& quad, const sn::BoundarySpec& bc) {
  return [&m, &xs, &quad, bc]() {
    return sn::sequential_sweep_pass(xs, [&, bc](int g) -> sn::SweepOperator {
      auto gd = std::make_shared<sn::StructuredDD>(m, xs.group_view(g), true,
                                                   bc);
      auto sweeper =
          std::make_shared<sn::StructuredSerialSweeper>(*gd, quad);
      return [gd, sweeper](const std::vector<double>& q) {
        return sweeper->sweep(q);
      };
    });
  };
}

/// One parallel k-eigenvalue solve on `ranks` ranks; returns rank 0's
/// result. The MultigroupXs is copied per rank (the driver mutates its
/// sources, and thread-backed ranks must not share the writable object).
sweep::EigenResult run_parallel_eigen(
    const mesh::StructuredMesh& m, const sn::MultigroupXs& xs_template,
    const sn::FissionXs& fission, const sn::Quadrature& quad,
    const sn::BoundarySpec& bc, int blocks, int ranks,
    const sweep::EigenOptions& options, sweep::EngineKind kind,
    bool pipelined = true, bool coarsened = false,
    std::uint64_t scheduler_seed = 0, int work_stealing = -1) {
  sweep::EigenResult out;
  const partition::CsrGraph cg = partition::cell_graph(m);
  const partition::PatchSet ps = make_patches(m, cg, blocks);
  comm::Cluster::run(ranks, [&](comm::Context& ctx) {
    sn::MultigroupXs xs = xs_template;  // per-rank writable copy
    const sn::StructuredDD disc(m, xs.group_view(0), true, bc);
    sweep::PlanConfig pc;
    pc.cluster_grain = 8;
    pc.multigroup = &xs;
    pc.group_pipelining = pipelined;
    const auto owner =
        partition::assign_contiguous(ps.num_patches(), ctx.size());
    const auto plan =
        sweep::SweepPlan::build(ctx, m, ps, owner, disc, quad, pc);
    sweep::SolveConfig sc;
    sc.engine = kind;
    sc.num_workers = 2;
    sc.use_coarsened_graph = coarsened;
    sc.scheduler_seed = scheduler_seed;
    sc.work_stealing = work_stealing;
    const auto result =
        sweep::solve_k_eigenvalue(ctx, plan, xs, fission, options);
    if (ctx.rank().value() == 0) out = result;
  });
  return out;
}

void expect_bitwise_equal(const sweep::EigenResult& a,
                          const sweep::EigenResult& b, const char* what) {
  ASSERT_EQ(a.outer_iterations, b.outer_iterations) << what;
  ASSERT_EQ(a.k, b.k) << what;
  ASSERT_EQ(a.phi.size(), b.phi.size()) << what;
  for (std::size_t g = 0; g < a.phi.size(); ++g)
    for (std::size_t c = 0; c < a.phi[g].size(); ++c)
      ASSERT_EQ(a.phi[g][c], b.phi[g][c])
          << what << " group " << g << " cell " << c;
}

// ---------------------------------------------------------------------------
// Reflecting boundaries, fixed source: engines vs the serial reference
// ---------------------------------------------------------------------------

TEST(Boundary, ReflectingFixedSourceMatchesSerialReference) {
  const mesh::StructuredMesh m = mesh::make_cube_mesh(5, 5.0);
  sn::CellXs xs;
  const auto n = static_cast<std::size_t>(m.num_cells());
  xs.sigma_t.assign(n, 0.8);
  xs.sigma_s.assign(n, 0.3);
  xs.source.assign(n, 1.0);
  sn::BoundarySpec bc;
  bc.side(mesh::FaceDir::XLo) = 1.0;
  bc.side(mesh::FaceDir::YHi) = 0.5;
  bc.side(mesh::FaceDir::ZLo) = 1.0;
  const sn::StructuredDD disc(m, xs, true, bc);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const auto q = test_source(m.num_cells());

  // Ground truth: three successive sweeps of the stateful serial sweeper
  // (the boundary iterates evolve sweep over sweep).
  sn::StructuredSerialSweeper sweeper(disc, quad);
  std::vector<std::vector<double>> reference;
  for (int k = 0; k < 3; ++k) reference.push_back(sweeper.sweep(q));
  EXPECT_GT(sweeper.last_lag_residual(), 0.0);

  const partition::CsrGraph cg = partition::cell_graph(m);
  const partition::PatchSet ps = make_patches(m, cg, 2);
  for (const auto kind :
       {sweep::EngineKind::DataDriven, sweep::EngineKind::Bsp}) {
    for (const int ranks : {1, 2}) {
      std::vector<std::vector<double>> phis;
      comm::Cluster::run(ranks, [&](comm::Context& ctx) {
        sweep::SolverConfig config;
        config.engine = kind;
        config.num_workers = 2;
        config.cluster_grain = 8;
        const auto owner =
            partition::assign_contiguous(ps.num_patches(), ctx.size());
        sweep::SweepSolver solver(ctx, m, ps, owner, disc, quad, config);
        std::vector<std::vector<double>> local;
        for (int k = 0; k < 3; ++k) local.push_back(solver.sweep(q));
        if (ctx.rank().value() == 0) phis = std::move(local);
      });
      ASSERT_EQ(phis.size(), reference.size());
      for (std::size_t k = 0; k < reference.size(); ++k)
        for (std::size_t c = 0; c < reference[k].size(); ++c)
          ASSERT_NEAR(phis[k][c], reference[k][c], kTol)
              << "engine " << static_cast<int>(kind) << " ranks " << ranks
              << " sweep " << k << " cell " << c;
    }
  }
}

TEST(Boundary, VacuumSpecDegeneratesToStatelessSweep) {
  // An all-vacuum BoundarySpec must leave the solve bitwise identical to
  // the boundary-free path (the spec is the default — this guards the
  // plumbing against accidental perturbation of the classic case).
  const mesh::StructuredMesh m = mesh::make_cube_mesh(4, 4.0);
  sn::CellXs xs;
  const auto n = static_cast<std::size_t>(m.num_cells());
  xs.sigma_t.assign(n, 0.7);
  xs.sigma_s.assign(n, 0.2);
  xs.source.assign(n, 1.0);
  const sn::StructuredDD disc(m, xs, true, sn::BoundarySpec{});
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const auto q = test_source(m.num_cells());
  const auto stateless = sn::serial_sweep(disc, quad, q);
  sn::StructuredSerialSweeper sweeper(disc, quad);
  const auto stateful = sweeper.sweep(q);
  ASSERT_EQ(stateless.size(), stateful.size());
  for (std::size_t c = 0; c < stateless.size(); ++c)
    ASSERT_EQ(stateless[c], stateful[c]) << "cell " << c;
  EXPECT_EQ(sweeper.last_lag_residual(), 0.0);
}

// ---------------------------------------------------------------------------
// k-eigenvalue power iteration
// ---------------------------------------------------------------------------

sweep::EigenOptions tight_options() {
  sweep::EigenOptions options;
  options.max_outer_iterations = 200;
  options.k_tolerance = 1e-13;
  options.fission_tolerance = 1e-11;
  options.multigroup.inner = {1e-13, 2000, false};
  return options;
}

TEST(Eigen, InfiniteMediumMatchesAnalyticKInf) {
  const mesh::StructuredMesh m = mesh::make_cube_mesh(4, 4.0);
  InfiniteMedium medium(m.num_cells());
  const sn::BoundarySpec bc = sn::BoundarySpec::reflecting_all();
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const auto result = sweep::solve_k_eigenvalue_serial(
      medium.xs, medium.fission,
      sn::StructuredDD(m, medium.xs.group_view(0), true, bc),
      serial_pass_factory(m, medium.xs, quad, bc), tight_options());
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.k, 0.6, kTol);  // νΣ_f / (Σ_t − Σ_s) = 0.3 / 0.5
  EXPECT_GT(result.outer_iterations, 1);
  // The converged flux is flat (infinite medium): max relative spread
  // across cells collapses to iteration tolerance.
  double lo = result.phi[0][0];
  double hi = result.phi[0][0];
  for (const double v : result.phi[0]) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_NEAR(hi / lo, 1.0, 1e-9);
}

TEST(Eigen, KScalesLinearlyWithNuSigmaF) {
  // Doubling νΣ_f doubles the eigenvalue: k is linear in the production
  // operator. Checked through the full solve, not the formula.
  const mesh::StructuredMesh m = mesh::make_cube_mesh(3, 3.0);
  const sn::BoundarySpec bc = sn::BoundarySpec::reflecting_all();
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  InfiniteMedium base(m.num_cells(), 0.3);
  InfiniteMedium doubled(m.num_cells(), 0.6);
  const auto k_base = sweep::solve_k_eigenvalue_serial(
      base.xs, base.fission,
      sn::StructuredDD(m, base.xs.group_view(0), true, bc),
      serial_pass_factory(m, base.xs, quad, bc), tight_options());
  const auto k_doubled = sweep::solve_k_eigenvalue_serial(
      doubled.xs, doubled.fission,
      sn::StructuredDD(m, doubled.xs.group_view(0), true, bc),
      serial_pass_factory(m, doubled.xs, quad, bc), tight_options());
  EXPECT_TRUE(k_base.converged);
  EXPECT_TRUE(k_doubled.converged);
  EXPECT_NEAR(k_doubled.k, 2.0 * k_base.k, kTol);
}

TEST(Eigen, ParallelMatchesSerialBitwiseAtWidthOne) {
  // Acceptance anchor: the parallel driver over a W = 1 plan reproduces
  // the serial reference's k bitwise (identical transport iterates,
  // identical power-iteration reductions) — on one rank and on two.
  const mesh::StructuredMesh m = mesh::make_cube_mesh(4, 4.0);
  InfiniteMedium medium(m.num_cells());
  const sn::BoundarySpec bc = sn::BoundarySpec::reflecting_all();
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const auto options = tight_options();
  const auto serial = sweep::solve_k_eigenvalue_serial(
      medium.xs, medium.fission,
      sn::StructuredDD(m, medium.xs.group_view(0), true, bc),
      serial_pass_factory(m, medium.xs, quad, bc), options);
  ASSERT_TRUE(serial.converged);

  InfiniteMedium fresh(m.num_cells());  // serial mutated medium.xs.source
  for (const int ranks : {1, 2}) {
    const auto parallel = run_parallel_eigen(
        m, fresh.xs, fresh.fission, quad, bc, 2, ranks, options,
        sweep::EngineKind::DataDriven);
    EXPECT_TRUE(parallel.converged) << ranks << " ranks";
    EXPECT_EQ(parallel.k, serial.k) << ranks << " ranks";
    EXPECT_EQ(parallel.outer_iterations, serial.outer_iterations)
        << ranks << " ranks";
    ASSERT_EQ(parallel.phi.size(), serial.phi.size());
    for (std::size_t c = 0; c < serial.phi[0].size(); ++c)
      EXPECT_EQ(parallel.phi[0][c], serial.phi[0][c])
          << ranks << " ranks, cell " << c;
  }
}

/// Fixed-work eigen options: tolerances at zero run exactly
/// `max_outer_iterations` outers, so every engine configuration performs
/// identical work and the iterates can be compared bitwise without
/// convergence-depth coupling.
sweep::EigenOptions fixed_work_options(int outers) {
  sweep::EigenOptions options;
  options.max_outer_iterations = outers;
  options.k_tolerance = 0.0;
  options.fission_tolerance = 0.0;
  options.multigroup.inner = {1e-6, 40, false};
  return options;
}

TEST(Eigen, CrossEngineKeffBitwise) {
  // Two-group heterogeneous box with mixed albedo sides: the data-driven
  // (pipelined, barriered, coarsened-replay) and BSP engines, on one and
  // two ranks, must all produce the same k and φ bitwise.
  const mesh::StructuredMesh m = mesh::make_cube_mesh(4, 4.0);
  TwoGroupCore core(m.num_cells());
  sn::BoundarySpec bc;
  bc.side(mesh::FaceDir::XLo) = 1.0;
  bc.side(mesh::FaceDir::YLo) = 1.0;
  bc.side(mesh::FaceDir::ZHi) = 0.5;
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const auto options = fixed_work_options(4);

  const auto reference =
      run_parallel_eigen(m, core.xs, core.fission, quad, bc, 2, 1, options,
                         sweep::EngineKind::DataDriven);
  EXPECT_EQ(reference.outer_iterations, 4);
  EXPECT_GT(reference.k, 0.0);

  expect_bitwise_equal(
      reference,
      run_parallel_eigen(m, core.xs, core.fission, quad, bc, 2, 2, options,
                         sweep::EngineKind::DataDriven),
      "data-driven 2 ranks");
  expect_bitwise_equal(
      reference,
      run_parallel_eigen(m, core.xs, core.fission, quad, bc, 2, 2, options,
                         sweep::EngineKind::Bsp),
      "bsp 2 ranks");
  expect_bitwise_equal(
      reference,
      run_parallel_eigen(m, core.xs, core.fission, quad, bc, 2, 2, options,
                         sweep::EngineKind::DataDriven, /*pipelined=*/false),
      "data-driven barriered");
  expect_bitwise_equal(
      reference,
      run_parallel_eigen(m, core.xs, core.fission, quad, bc, 2, 1, options,
                         sweep::EngineKind::DataDriven, /*pipelined=*/true,
                         /*coarsened=*/true),
      "data-driven coarsened");

  // And the serial reference agrees bitwise on the same fixed work.
  sn::MultigroupXs xs = core.xs;
  const auto serial = sweep::solve_k_eigenvalue_serial(
      xs, core.fission, sn::StructuredDD(m, xs.group_view(0), true, bc),
      serial_pass_factory(m, xs, quad, bc), options);
  EXPECT_EQ(serial.k, reference.k);
  for (std::size_t g = 0; g < serial.phi.size(); ++g)
    for (std::size_t c = 0; c < serial.phi[g].size(); ++c)
      ASSERT_EQ(serial.phi[g][c], reference.phi[g][c])
          << "serial group " << g << " cell " << c;
}

TEST(Eigen, SchedulePerturbationInvariance) {
  // Eight scheduler seeds × work stealing forced on/off: the eigenvalue
  // solve (reflecting boundaries, two groups) is bitwise invariant under
  // every schedule perturbation.
  const mesh::StructuredMesh m = mesh::make_cube_mesh(4, 4.0);
  TwoGroupCore core(m.num_cells());
  sn::BoundarySpec bc;
  bc.side(mesh::FaceDir::XHi) = 1.0;
  bc.side(mesh::FaceDir::ZLo) = 1.0;
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const auto options = fixed_work_options(3);

  const auto reference =
      run_parallel_eigen(m, core.xs, core.fission, quad, bc, 2, 1, options,
                         sweep::EngineKind::DataDriven);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 5ULL, 8ULL, 13ULL,
                                   21ULL, 0xdeadbeefULL}) {
    for (const int stealing : {0, 1}) {
      SCOPED_TRACE(testing::Message()
                   << "seed " << seed << " stealing " << stealing);
      expect_bitwise_equal(
          reference,
          run_parallel_eigen(m, core.xs, core.fission, quad, bc, 2, 1,
                             options, sweep::EngineKind::DataDriven,
                             /*pipelined=*/true, /*coarsened=*/false, seed,
                             stealing),
          "perturbed schedule");
    }
  }
}

TEST(Boundary, ReflectingFixedSourceSchedulePerturbationInvariance) {
  // The same eight-seed × stealing sweep over a fixed-source solve with
  // reflecting boundaries: three successive sweeps, all bitwise equal.
  const mesh::StructuredMesh m = mesh::make_cube_mesh(4, 4.0);
  sn::CellXs xs;
  const auto n = static_cast<std::size_t>(m.num_cells());
  xs.sigma_t.assign(n, 0.8);
  xs.sigma_s.assign(n, 0.3);
  xs.source.assign(n, 1.0);
  sn::BoundarySpec bc;
  bc.side(mesh::FaceDir::XLo) = 1.0;
  bc.side(mesh::FaceDir::YHi) = 1.0;
  const sn::StructuredDD disc(m, xs, true, bc);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const auto q = test_source(m.num_cells());
  const partition::CsrGraph cg = partition::cell_graph(m);
  const partition::PatchSet ps = make_patches(m, cg, 2);

  const auto run = [&](std::uint64_t seed, int stealing) {
    std::vector<std::vector<double>> phis;
    comm::Cluster::run(1, [&](comm::Context& ctx) {
      sweep::SolverConfig config;
      config.num_workers = 2;
      config.cluster_grain = 8;
      config.scheduler_seed = seed;
      config.work_stealing = stealing;
      const auto owner = partition::assign_contiguous(ps.num_patches(), 1);
      sweep::SweepSolver solver(ctx, m, ps, owner, disc, quad, config);
      for (int k = 0; k < 3; ++k) phis.push_back(solver.sweep(q));
    });
    return phis;
  };

  const auto reference = run(0, -1);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 5ULL, 8ULL, 13ULL,
                                   21ULL, 0xfeedfaceULL}) {
    for (const int stealing : {0, 1}) {
      const auto phis = run(seed, stealing);
      ASSERT_EQ(phis.size(), reference.size());
      for (std::size_t k = 0; k < reference.size(); ++k)
        for (std::size_t c = 0; c < reference[k].size(); ++c)
          ASSERT_EQ(phis[k][c], reference[k][c])
              << "seed " << seed << " stealing " << stealing << " sweep "
              << k << " cell " << c;
    }
  }
}

TEST(Eigen, PlanIsReusedAcrossAllOuters) {
  // The whole point of the plan/session split applied to eigenvalue
  // outers: one SweepPlan::build, zero task-graph construction during the
  // power iteration (EigenStats::task_data_built counts process-wide
  // SweepTaskData creations inside the solve).
  const mesh::StructuredMesh m = mesh::make_cube_mesh(4, 4.0);
  InfiniteMedium medium(m.num_cells());
  const sn::BoundarySpec bc = sn::BoundarySpec::reflecting_all();
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  sweep::EigenOptions options = tight_options();
  options.multigroup.inner = {1e-10, 500, false};
  options.k_tolerance = 1e-10;
  options.fission_tolerance = 1e-8;
  const auto result =
      run_parallel_eigen(m, medium.xs, medium.fission, quad, bc, 2, 1,
                         options, sweep::EngineKind::DataDriven);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.outer_iterations, 1);
  EXPECT_GT(result.stats.transport_sweeps, result.outer_iterations);
  EXPECT_EQ(result.stats.task_data_built, 0);
  EXPECT_GT(result.stats.solve_seconds, 0.0);
}

}  // namespace
}  // namespace jsweep
