// Tests for the Sn transport substrate: quadrature, kernels, serial sweeps
// and source iteration physics.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <numbers>
#include <vector>

#include "mesh/generators.hpp"
#include "sn/discretization.hpp"
#include "sn/face_flux.hpp"
#include "sn/quadrature.hpp"
#include "sn/serial_sweep.hpp"
#include "sn/source_iteration.hpp"
#include "sn/xs.hpp"
#include "support/check.hpp"

namespace jsweep::sn {
namespace {

constexpr double kFourPi = 4.0 * std::numbers::pi;

class QuadratureLevelSymmetric : public ::testing::TestWithParam<int> {};

TEST_P(QuadratureLevelSymmetric, CountWeightsAndSymmetry) {
  const int n = GetParam();
  const Quadrature q = Quadrature::level_symmetric(n);
  EXPECT_EQ(q.num_angles(), n * (n + 2));
  EXPECT_NEAR(q.total_weight(), kFourPi, 1e-6 * kFourPi);
  // Unit directions; octant parity; first-moment cancellation.
  mesh::Vec3 first{};
  for (const auto& o : q.ordinates()) {
    EXPECT_NEAR(norm(o.dir), 1.0, 1e-6);
    EXPECT_EQ(o.octant, octant_of(o.dir));
    first += o.dir * o.weight;
  }
  EXPECT_NEAR(norm(first), 0.0, 1e-9);
  // Second moment: ∫ Ωx² dΩ = 4π/3.
  double mxx = 0.0;
  for (const auto& o : q.ordinates()) mxx += o.weight * o.dir.x * o.dir.x;
  EXPECT_NEAR(mxx, kFourPi / 3.0, 1e-4 * kFourPi);
}

INSTANTIATE_TEST_SUITE_P(S2toS8, QuadratureLevelSymmetric,
                         ::testing::Values(2, 4, 6, 8));

TEST(Quadrature, UnsupportedLevelSymmetricThrows) {
  EXPECT_THROW(Quadrature::level_symmetric(10), CheckError);
}

class QuadratureProduct
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QuadratureProduct, MomentsExact) {
  const auto [npolar, nazim] = GetParam();
  const Quadrature q = Quadrature::product(npolar, nazim);
  EXPECT_EQ(q.num_angles(), npolar * nazim);
  EXPECT_NEAR(q.total_weight(), kFourPi, 1e-10 * kFourPi);
  mesh::Vec3 first{};
  for (const auto& o : q.ordinates()) first += o.dir * o.weight;
  EXPECT_NEAR(norm(first), 0.0, 1e-10);
  // No grazing components (directions stay off the coordinate planes).
  for (const auto& o : q.ordinates()) {
    EXPECT_GT(std::abs(o.dir.x), 1e-8);
    EXPECT_GT(std::abs(o.dir.y), 1e-8);
    EXPECT_GT(std::abs(o.dir.z), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuadratureProduct,
                         ::testing::Values(std::pair{2, 4}, std::pair{4, 8},
                                           std::pair{8, 40}));

TEST(MaterialTable, LookupAndBounds) {
  const MaterialTable t = MaterialTable::kobayashi();
  EXPECT_DOUBLE_EQ(t.at(mesh::kMatSource).source, 1.0);
  EXPECT_DOUBLE_EQ(t.at(mesh::kMatVoid).sigma_t, 1e-4);
  EXPECT_THROW((void)t.at(99), CheckError);
}

TEST(MaterialTable, ExpandPerCell) {
  mesh::StructuredMesh m = mesh::make_kobayashi_mesh(10);
  const CellXs xs =
      expand(MaterialTable::kobayashi(), m.materials(), m.num_cells());
  EXPECT_EQ(static_cast<std::int64_t>(xs.sigma_t.size()), m.num_cells());
  // Source region has the external source.
  double total_source = 0.0;
  for (const auto s : xs.source) total_source += s;
  EXPECT_GT(total_source, 0.0);
}

// --------------------------------------------------------------------------
// Diamond-difference kernel
// --------------------------------------------------------------------------

TEST(StructuredDD, MatchesManual1dRecurrence) {
  // Direction along +x only: DD reduces to the classic 1-D recurrence.
  const int kN = 16;
  const double kSigma = 0.7;
  const double kQ = 0.3;  // per steradian
  const mesh::StructuredMesh m({kN, 1, 1}, {0.25, 1, 1});
  CellXs xs;
  xs.sigma_t.assign(kN, kSigma);
  xs.sigma_s.assign(kN, 0.0);
  xs.source.assign(kN, 0.0);
  const StructuredDD disc(m, xs, /*fixup=*/false);

  const Ordinate ang{{1.0, 0.0, 0.0}, 1.0, 0};
  const std::vector<double> q(kN, kQ);
  FaceFluxMap flux;
  std::vector<double> psi(kN);
  for (int i = 0; i < kN; ++i)
    psi[static_cast<std::size_t>(i)] =
        disc.sweep_cell(m.cell_at({i, 0, 0}), ang, q, flux);

  // Manual recurrence: psi_c = (q + 2/dx * psi_in) / (sigma + 2/dx).
  double in = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double alpha = 2.0 / 0.25;
    const double expect = (kQ + alpha * in) / (kSigma + alpha);
    EXPECT_NEAR(psi[static_cast<std::size_t>(i)], expect, 1e-14);
    in = 2.0 * expect - in;
  }
}

TEST(StructuredDD, ConvergesToAnalyticAttenuation) {
  // Pure absorber, boundary source imitated by a thin source layer is
  // awkward — instead check the infinite-medium limit: uniform source,
  // deep interior, φ → q_per_ster * 4π / σt.
  const int kN = 20;
  const double kSigma = 2.0;
  const mesh::StructuredMesh m({kN, kN, kN}, {1, 1, 1});
  CellXs xs;
  const auto n = static_cast<std::size_t>(m.num_cells());
  xs.sigma_t.assign(n, kSigma);
  xs.sigma_s.assign(n, 0.0);
  xs.source.assign(n, 1.0);
  const StructuredDD disc(m, xs);
  const Quadrature quad = Quadrature::level_symmetric(4);
  const std::vector<double> q(n, 1.0 / kFourPi);
  const auto phi = serial_sweep(disc, quad, q);
  const CellId center = m.cell_at({kN / 2, kN / 2, kN / 2});
  // φ_inf = Q / σ_t for a pure absorber.
  EXPECT_NEAR(phi[static_cast<std::size_t>(center.value())], 1.0 / kSigma,
              0.02 / kSigma);
  // Boundary cells see vacuum: flux strictly below the interior value.
  EXPECT_LT(phi[0], phi[static_cast<std::size_t>(center.value())]);
}

TEST(StructuredDD, FixupClampsNegativeFaceFlux) {
  // A single optically thick cell with incoming flux drives 2ψc − ψin
  // negative; with fixup the stored face flux must be ≥ 0.
  const mesh::StructuredMesh m({2, 1, 1}, {100.0, 1, 1});
  CellXs xs;
  xs.sigma_t.assign(2, 5.0);
  xs.sigma_s.assign(2, 0.0);
  xs.source.assign(2, 0.0);
  const StructuredDD fix(m, xs, true);
  const Ordinate ang{{1.0, 0.0, 0.0}, 1.0, 0};
  const std::vector<double> q{1.0, 0.0};
  FaceFluxMap flux;
  (void)fix.sweep_cell(m.cell_at({0, 0, 0}), ang, q, flux);
  (void)fix.sweep_cell(m.cell_at({1, 0, 0}), ang, q, flux);
  for (const auto& [face, value] : flux) EXPECT_GE(value, 0.0);
}

// --------------------------------------------------------------------------
// Tet step kernel
// --------------------------------------------------------------------------

TEST(TetStep, SingleTetManualSolution) {
  const mesh::TetMesh m({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
                        {{{0, 1, 2, 3}}});
  CellXs xs;
  xs.sigma_t = {2.0};
  xs.sigma_s = {0.0};
  xs.source = {0.0};
  const TetStep disc(m, xs);
  const Ordinate ang{normalized(mesh::Vec3{1, 1, 1}), 1.0, 0};
  const std::vector<double> q{3.0};
  FaceFluxMap flux;
  const double psi = disc.sweep_cell(CellId{0}, ang, q, flux);

  double outflow_coeff = 0.0;
  for (const auto f : m.cell_faces(CellId{0})) {
    const double adot = dot(m.outward_area(f, CellId{0}), ang.dir);
    if (adot > 0) outflow_coeff += adot;
  }
  const double volume = 1.0 / 6.0;
  EXPECT_NEAR(psi, 3.0 * volume / (2.0 * volume + outflow_coeff), 1e-14);
  // Outgoing faces carry ψc; step scheme is positive.
  for (const auto& [face, value] : flux) EXPECT_DOUBLE_EQ(value, psi);
}

TEST(TetStep, PerCellBalanceHolds) {
  // Conservation per cell and angle: inflow + qV = σtV ψ + outflow.
  const mesh::TetMesh m = mesh::make_ball_mesh(6, 3.0);
  const CellXs xs = expand(MaterialTable::ball(), m.materials(), m.num_cells());
  const TetStep disc(m, xs);
  const Ordinate ang{normalized(mesh::Vec3{0.3, -0.5, 0.81}), 1.0, 0};
  std::vector<double> q(static_cast<std::size_t>(m.num_cells()), 0.25);

  const graph::Digraph g = graph::build_global_cell_digraph(m, ang.dir);
  const auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  FaceFluxMap flux;
  for (const auto v : *order) {
    const CellId c{v};
    const double psi = disc.sweep_cell(c, ang, q, flux);
    double in = 0.0;
    double out = 0.0;
    for (const auto f : m.cell_faces(c)) {
      const double adot = dot(m.outward_area(f, c), ang.dir);
      if (adot > 0) {
        out += adot * flux[f];
      } else {
        const auto it = flux.find(f);
        in += (-adot) * (it == flux.end() ? 0.0 : it->second);
      }
    }
    const double volume = m.cell_volume(c);
    const double sigma = xs.sigma_t[static_cast<std::size_t>(c.value())];
    EXPECT_NEAR(in + 0.25 * volume, sigma * volume * psi + out,
                1e-10 * (1.0 + out));
  }
}

TEST(TetStep, InfiniteMediumLimit) {
  const mesh::TetMesh m = mesh::make_ball_mesh(10, 5.0);
  CellXs xs;
  const auto n = static_cast<std::size_t>(m.num_cells());
  xs.sigma_t.assign(n, 3.0);
  xs.sigma_s.assign(n, 0.0);
  xs.source.assign(n, 1.0);
  const TetStep disc(m, xs);
  const Quadrature quad = Quadrature::level_symmetric(2);
  const std::vector<double> q(n, 1.0 / kFourPi);
  const auto phi = serial_sweep(disc, quad, q);
  // Center cell: a few mean free paths from the boundary.
  std::int64_t center = 0;
  double best = 1e300;
  for (std::int64_t c = 0; c < m.num_cells(); ++c) {
    const double r = norm(m.cell_centroid(CellId{c}));
    if (r < best) {
      best = r;
      center = c;
    }
  }
  EXPECT_NEAR(phi[static_cast<std::size_t>(center)], 1.0 / 3.0, 0.05 / 3.0);
}

// --------------------------------------------------------------------------
// Group-set batched kernels (sweep_cell_set vs per-group scalar sweeps)
// --------------------------------------------------------------------------

// Map a double to a monotonic integer so ULP distance is a subtraction.
std::int64_t ordered_bits(double x) {
  std::int64_t i = 0;
  std::memcpy(&i, &x, sizeof(x));
  return i < 0 ? std::numeric_limits<std::int64_t>::min() - i : i;
}

std::int64_t ulp_distance(double a, double b) {
  const std::int64_t d = ordered_bits(a) - ordered_bits(b);
  return d < 0 ? -d : d;
}

// Lane data generators: every lane gets a distinct σ_t / q profile so a
// lane-index mixup cannot cancel out. Lane σ_t spans near-void to optically
// thick so the batched negative-flux fixup path is exercised too.
double lane_sigma(std::int64_t c, int lane) {
  return 0.02 + 0.9 * lane + 0.13 * static_cast<double>((c + lane) % 5);
}

double lane_q(std::int64_t c, int lane) {
  // Zero source on a stripe of cells: fixup needs ψ_out < 0 candidates.
  if ((c + lane) % 7 == 0) return 0.0;
  return 0.25 + 0.1 * lane + 0.01 * static_cast<double>(c % 3);
}

// Sweeps `order` through `width` per-lane scalar kernels and once through
// the geometry carrier's batched kernel; gates ψ and every outgoing face
// flux to ≤ 1 ULP per lane. On this repo's baseline build (no contracted
// FMA) the kernels document bitwise equality, which ≤ 1 ULP subsumes.
template <typename Disc, typename MakeDisc>
void expect_set_kernel_matches_scalar(const Disc& carrier,
                                      const MakeDisc& make_lane_disc,
                                      const std::vector<std::int64_t>& order,
                                      const Ordinate& ang, int width,
                                      std::int64_t num_face_slots) {
  const std::int64_t n = carrier.num_cells();
  const std::vector<CellFaceSlots> slots = build_identity_slots(carrier, ang);

  // Per-lane scalar reference sweeps.
  std::vector<std::vector<double>> psi_ref(static_cast<std::size_t>(width));
  std::vector<FaceFluxWorkspace> ws_ref(static_cast<std::size_t>(width));
  for (int l = 0; l < width; ++l) {
    CellXs xs;
    std::vector<double> q(static_cast<std::size_t>(n));
    xs.sigma_t.resize(static_cast<std::size_t>(n));
    xs.sigma_s.assign(static_cast<std::size_t>(n), 0.0);
    xs.source.assign(static_cast<std::size_t>(n), 0.0);
    for (std::int64_t c = 0; c < n; ++c) {
      xs.sigma_t[static_cast<std::size_t>(c)] = lane_sigma(c, l);
      q[static_cast<std::size_t>(c)] = lane_q(c, l);
    }
    const auto disc = make_lane_disc(std::move(xs));
    auto& ws = ws_ref[static_cast<std::size_t>(l)];
    ws.prepare(num_face_slots);
    auto& psi = psi_ref[static_cast<std::size_t>(l)];
    psi.resize(static_cast<std::size_t>(n));
    for (const auto c : order) {
      const FaceFluxView view{&ws, &slots[static_cast<std::size_t>(c)]};
      psi[static_cast<std::size_t>(c)] =
          disc->sweep_cell(CellId{c}, ang, q, view);
    }
  }

  // One batched sweep over the same cells: set-strided q / σ_t, lane-
  // adjacent face slots, σ_t supplied by the caller (the carrier's own xs
  // is deliberately lane 0's so a fallback to xs() would show up).
  std::vector<double> q_set(static_cast<std::size_t>(n * width));
  std::vector<double> sigma_set(static_cast<std::size_t>(n * width));
  for (std::int64_t c = 0; c < n; ++c) {
    for (int l = 0; l < width; ++l) {
      q_set[static_cast<std::size_t>(c * width + l)] = lane_q(c, l);
      sigma_set[static_cast<std::size_t>(c * width + l)] = lane_sigma(c, l);
    }
  }
  FaceFluxWorkspace ws_set;
  ws_set.prepare(num_face_slots * width);
  std::vector<double> psi_set(static_cast<std::size_t>(n * width));
  double psi_lanes[kMaxGroupSetWidth] = {};
  for (const auto c : order) {
    const FaceFluxSetView view{&ws_set, &slots[static_cast<std::size_t>(c)],
                               width};
    carrier.sweep_cell_set(CellId{c}, ang, width, q_set.data(),
                           sigma_set.data(), view, psi_lanes);
    for (int l = 0; l < width; ++l)
      psi_set[static_cast<std::size_t>(c * width + l)] = psi_lanes[l];
  }

  // Gate: ψ and outgoing face fluxes within 1 ULP of the scalar lanes.
  for (std::int64_t c = 0; c < n; ++c) {
    for (int l = 0; l < width; ++l) {
      const double ref = psi_ref[static_cast<std::size_t>(l)]
                                [static_cast<std::size_t>(c)];
      const double got = psi_set[static_cast<std::size_t>(c * width + l)];
      ASSERT_LE(ulp_distance(ref, got), 1)
          << "psi mismatch at cell " << c << " lane " << l << " width "
          << width << ": scalar " << ref << " vs set " << got;
    }
    const CellFaceSlots& s = slots[static_cast<std::size_t>(c)];
    for (int k = 0; k < 4; ++k) {
      const std::int32_t slot = s.out[static_cast<std::size_t>(k)];
      if (slot < 0) continue;
      for (int l = 0; l < width; ++l) {
        if (!ws_ref[static_cast<std::size_t>(l)].has(slot)) continue;
        const double ref = ws_ref[static_cast<std::size_t>(l)].read(slot);
        const double got = ws_set.read(slot * width + l);
        ASSERT_LE(ulp_distance(ref, got), 1)
            << "face flux mismatch at cell " << c << " entry " << k
            << " lane " << l << " width " << width;
      }
    }
  }
}

class StructuredSetKernel : public ::testing::TestWithParam<int> {};

TEST_P(StructuredSetKernel, MatchesScalarLanesWithinOneUlp) {
  const int width = GetParam();
  // 10 cm cells + σ_t up to ~4.5 keep several cells optically thick, so
  // the vectorized fixup branch runs alongside the regular recurrence.
  const mesh::StructuredMesh m = mesh::make_cube_mesh(6, 60.0);
  const auto n = static_cast<std::size_t>(m.num_cells());
  CellXs carrier_xs;
  carrier_xs.sigma_t.resize(n);
  carrier_xs.sigma_s.assign(n, 0.0);
  carrier_xs.source.assign(n, 0.0);
  for (std::size_t c = 0; c < n; ++c)
    carrier_xs.sigma_t[c] = lane_sigma(static_cast<std::int64_t>(c), 0);
  const StructuredDD carrier(m, carrier_xs);
  const Ordinate ang{mesh::normalized({0.5, 0.6, 0.62}), 1.0, 0};
  // Ascending cell index is a topological order for an all-positive
  // direction on the structured mesh.
  std::vector<std::int64_t> order(n);
  for (std::size_t c = 0; c < n; ++c)
    order[c] = static_cast<std::int64_t>(c);
  expect_set_kernel_matches_scalar(
      carrier,
      [&](CellXs xs) { return std::make_unique<StructuredDD>(m, xs); },
      order, ang, width, m.num_cells() * 6);
}

INSTANTIATE_TEST_SUITE_P(Widths, StructuredSetKernel,
                         ::testing::Values(1, 2, 3, 4, 8));

class TetSetKernel : public ::testing::TestWithParam<int> {};

TEST_P(TetSetKernel, MatchesScalarLanesWithinOneUlp) {
  const int width = GetParam();
  const mesh::TetMesh m = mesh::make_ball_mesh(6, 3.0);
  CellXs carrier_xs;
  const auto n = static_cast<std::size_t>(m.num_cells());
  carrier_xs.sigma_t.resize(n);
  carrier_xs.sigma_s.assign(n, 0.0);
  carrier_xs.source.assign(n, 0.0);
  for (std::size_t c = 0; c < n; ++c)
    carrier_xs.sigma_t[c] = lane_sigma(static_cast<std::int64_t>(c), 0);
  const TetStep carrier(m, carrier_xs);
  const Ordinate ang{normalized(mesh::Vec3{0.3, -0.5, 0.81}), 1.0, 0};
  const graph::Digraph g = graph::build_global_cell_digraph(m, ang.dir);
  const auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  std::vector<std::int64_t> cells(order->begin(), order->end());
  expect_set_kernel_matches_scalar(
      carrier,
      [&](CellXs xs) { return std::make_unique<TetStep>(m, std::move(xs)); },
      cells, ang, width, m.num_faces());
}

INSTANTIATE_TEST_SUITE_P(Widths, TetSetKernel,
                         ::testing::Values(1, 2, 3, 4, 8));

// --------------------------------------------------------------------------
// Source iteration
// --------------------------------------------------------------------------

TEST(SourceIteration, EmissionDensityFormula) {
  CellXs xs;
  xs.sigma_t = {1.0};
  xs.sigma_s = {0.5};
  xs.source = {2.0};
  const auto q = emission_density(xs, {3.0});
  EXPECT_NEAR(q[0], (0.5 * 3.0 + 2.0) / kFourPi, 1e-15);
}

TEST(SourceIteration, RelativeLinf) {
  EXPECT_DOUBLE_EQ(relative_linf({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(relative_linf({2.0, 4.0}, {2.0, 3.0}), 0.25);
  EXPECT_DOUBLE_EQ(relative_linf({0.0}, {0.0}), 0.0);
}

TEST(SourceIteration, ConvergesOnScatteringProblem) {
  const mesh::StructuredMesh m = mesh::make_cube_mesh(8, 8.0);
  CellXs xs;
  const auto n = static_cast<std::size_t>(m.num_cells());
  xs.sigma_t.assign(n, 1.0);
  xs.sigma_s.assign(n, 0.5);  // scattering ratio c = 0.5 → fast convergence
  xs.source.assign(n, 1.0);
  const StructuredDD disc(m, xs);
  const Quadrature quad = Quadrature::level_symmetric(2);

  const auto result = source_iteration(
      xs,
      [&](const std::vector<double>& q) { return serial_sweep(disc, quad, q); },
      {1e-8, 200, false});
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.error, 1e-8);
  // With scattering the flux must exceed the no-scattering flux.
  const auto phi0 = serial_sweep(
      disc, quad, emission_density(CellXs{xs.sigma_t, std::vector<double>(n, 0.0),
                                          xs.source},
                                   std::vector<double>(n, 0.0)));
  double with_scatter = 0.0;
  double without = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    with_scatter += result.phi[c];
    without += phi0[c];
  }
  EXPECT_GT(with_scatter, without);
}

TEST(SourceIteration, IterationCountGrowsWithScatteringRatio) {
  const mesh::StructuredMesh m = mesh::make_cube_mesh(6, 6.0);
  const auto n = static_cast<std::size_t>(m.num_cells());
  const Quadrature quad = Quadrature::level_symmetric(2);
  int iters_low = 0;
  int iters_high = 0;
  for (const double c : {0.3, 0.9}) {
    CellXs xs;
    xs.sigma_t.assign(n, 1.0);
    xs.sigma_s.assign(n, c);
    xs.source.assign(n, 1.0);
    const StructuredDD disc(m, xs);
    const auto result = source_iteration(
        xs,
        [&](const std::vector<double>& q) {
          return serial_sweep(disc, quad, q);
        },
        {1e-6, 500, false});
    EXPECT_TRUE(result.converged);
    (c < 0.5 ? iters_low : iters_high) = result.iterations;
  }
  EXPECT_GT(iters_high, iters_low);
}

TEST(SourceIteration, KobayashiVoidDuctChannelsFlux) {
  // Physics sanity on the benchmark problem: the void duct transports
  // particles much farther than the shield does.
  const mesh::StructuredMesh m = mesh::make_kobayashi_mesh(10);  // 10cm cells
  const CellXs xs =
      expand(MaterialTable::kobayashi(), m.materials(), m.num_cells());
  const StructuredDD disc(m, xs);
  const Quadrature quad = Quadrature::level_symmetric(4);
  const auto result = source_iteration(
      xs,
      [&](const std::vector<double>& q) { return serial_sweep(disc, quad, q); },
      {1e-6, 100, false});
  EXPECT_TRUE(result.converged);
  // Compare points equidistant from the source: down the duct's first leg
  // (x<10, y≈45, z<10 in problem coordinates) vs the same distance into
  // the shield. The near-void duct must channel several times more flux
  // (S4 ray effects cap the contrast on this coarse mesh).
  const auto phi_at = [&](int i, int j, int k) {
    return result.phi[static_cast<std::size_t>(
        m.cell_at({i, j, k}).value())];
  };
  EXPECT_GT(phi_at(0, 4, 0), 4.0 * phi_at(4, 0, 0));
  EXPECT_GT(phi_at(0, 2, 0), 4.0 * phi_at(2, 0, 0));
  // Flux decays monotonically along the duct.
  EXPECT_GT(phi_at(0, 2, 0), phi_at(0, 4, 0));
}

}  // namespace
}  // namespace jsweep::sn
