// The dense face-flux subsystem (sn/face_flux.hpp) must be a drop-in,
// bitwise-identical replacement for the unordered_map flux store:
//   - random operation sequences agree with a map reference exactly;
//   - the epoch-based O(1) reset never leaks values across reuses;
//   - missing-key-reads-zero (vacuum boundary) semantics are preserved;
//   - the dense kernels match the retained hash-map kernels bitwise;
//   - the kernel grind loop performs zero heap allocations;
//   - workspaces are recycled through the pool under the real engine.

#include <gtest/gtest.h>

#include <unordered_map>

#include "comm/cluster.hpp"
#include "mesh/generators.hpp"
#include "partition/adjacency.hpp"
#include "partition/block_layout.hpp"
#include "partition/graph_partition.hpp"
#include "partition/patch_set.hpp"
#include "sn/face_flux.hpp"
#include "sn/serial_sweep.hpp"
#include "support/alloc_counter.hpp"
#include "support/rng.hpp"
#include "sweep/solver.hpp"

namespace jsweep::sn {
namespace {

TEST(FaceFluxWorkspace, MatchesMapOnRandomOperationSequences) {
  Rng rng(20260731);
  FaceFluxWorkspace ws;
  std::unordered_map<std::int32_t, double> ref;
  for (int round = 0; round < 50; ++round) {
    const auto slots = static_cast<std::int32_t>(rng.range(1, 300));
    ws.prepare(slots);
    ref.clear();
    for (int op = 0; op < 500; ++op) {
      const auto s = static_cast<std::int32_t>(rng.range(0, slots - 1));
      if (rng.chance(0.5)) {
        const double v = rng.uniform(-10.0, 10.0);
        ws.write(s, v);
        ref[s] = v;
      } else {
        const auto it = ref.find(s);
        const double expect = it == ref.end() ? 0.0 : it->second;
        ASSERT_EQ(ws.read(s), expect);
        ASSERT_EQ(ws.has(s), it != ref.end());
      }
    }
  }
}

TEST(FaceFluxWorkspace, EpochResetIsCleanAfterManyReuses) {
  Rng rng(7);
  FaceFluxWorkspace ws;
  ws.prepare(128);
  for (int reuse = 0; reuse < 1000; ++reuse) {
    // Everything must read as unwritten after the O(1) reset...
    for (std::int32_t s = 0; s < 128; ++s) {
      ASSERT_FALSE(ws.has(s));
      ASSERT_EQ(ws.read(s), 0.0);
    }
    // ...then a few writes land only where made.
    const auto a = static_cast<std::int32_t>(rng.range(0, 127));
    const auto b = static_cast<std::int32_t>(rng.range(0, 127));
    ws.write(a, 1.0 + reuse);
    ws.write(b, -2.0 - reuse);
    ASSERT_EQ(ws.read(b), -2.0 - reuse);
    ASSERT_EQ(ws.read(a), a == b ? -2.0 - reuse : 1.0 + reuse);
    ws.reset();
  }
}

TEST(FaceFluxWorkspace, VacuumBoundaryReadsZero) {
  FaceFluxWorkspace ws;
  ws.prepare(8);
  EXPECT_EQ(ws.read(3), 0.0);  // never written: the vacuum boundary
  ws.write(3, 5.0);
  EXPECT_EQ(ws.read(3), 5.0);
  ws.reset();
  EXPECT_EQ(ws.read(3), 0.0);  // reset restores vacuum
  // A view whose `in` slot is kNone also reads zero.
  CellFaceSlots slots;
  const FaceFluxView view{&ws, &slots};
  EXPECT_EQ(view.read_in(0), 0.0);
}

/// Sweep every cell of a structured mesh with both kernel paths and demand
/// bitwise-equal ψ and outgoing face fluxes.
TEST(DenseKernel, StructuredBitwiseMatchesHashMapReference) {
  const mesh::StructuredMesh m({9, 7, 5}, {0.8, 1.1, 0.6});
  CellXs xs;
  const auto n = static_cast<std::size_t>(m.num_cells());
  Rng rng(42);
  xs.sigma_t.resize(n);
  xs.sigma_s.assign(n, 0.1);
  xs.source.assign(n, 1.0);
  std::vector<double> q(n);
  for (std::size_t c = 0; c < n; ++c) {
    xs.sigma_t[c] = rng.uniform(0.05, 2.0);
    q[c] = rng.uniform(0.0, 3.0);
  }
  const StructuredDD disc(m, xs);
  const Quadrature quad = Quadrature::level_symmetric(4);

  FaceFluxMap map_flux;
  FaceFluxWorkspace ws;
  ws.prepare(m.num_cells() * 6);
  CellFaceIds ids;
  for (const auto& ang : quad.ordinates()) {
    map_flux.clear();
    ws.reset();
    // Natural cell order is fine: both paths see the identical (possibly
    // not-yet-written) upstream state either way.
    for (std::int64_t c = 0; c < m.num_cells(); ++c) {
      disc.face_ids(CellId{c}, ang, ids);
      const CellFaceSlots slots = identity_slots(ids);
      const double psi_map = disc.sweep_cell(CellId{c}, ang, q, map_flux);
      const double psi_dense =
          disc.sweep_cell(CellId{c}, ang, q, FaceFluxView{&ws, &slots});
      ASSERT_EQ(psi_map, psi_dense);
    }
    // Every face the map holds must match the workspace exactly, and
    // vice versa (identity slots: slot == face id).
    for (const auto& [face, value] : map_flux) {
      ASSERT_TRUE(ws.has(static_cast<std::int32_t>(face)));
      ASSERT_EQ(ws.read(static_cast<std::int32_t>(face)), value);
    }
    for (std::int64_t f = 0; f < m.num_cells() * 6; ++f) {
      if (ws.has(static_cast<std::int32_t>(f))) {
        ASSERT_EQ(map_flux.count(f), 1u);
      }
    }
  }
}

TEST(DenseKernel, TetBitwiseMatchesHashMapReference) {
  const mesh::TetMesh m = mesh::make_ball_mesh(6, 3.0);
  const CellXs xs = expand(MaterialTable::ball(), m.materials(),
                           m.num_cells());
  const TetStep disc(m, xs);
  const Quadrature quad = Quadrature::level_symmetric(2);
  const std::vector<double> q(static_cast<std::size_t>(m.num_cells()), 0.7);

  FaceFluxMap map_flux;
  FaceFluxWorkspace ws;
  ws.prepare(m.num_faces());
  CellFaceIds ids;
  for (const auto& ang : quad.ordinates()) {
    const graph::Digraph g = graph::build_global_cell_digraph(m, ang.dir);
    const auto order = g.topological_order();
    ASSERT_TRUE(order.has_value());
    map_flux.clear();
    ws.reset();
    for (const auto v : *order) {
      disc.face_ids(CellId{v}, ang, ids);
      const CellFaceSlots slots = identity_slots(ids);
      const double psi_map = disc.sweep_cell(CellId{v}, ang, q, map_flux);
      const double psi_dense =
          disc.sweep_cell(CellId{v}, ang, q, FaceFluxView{&ws, &slots});
      ASSERT_EQ(psi_map, psi_dense);
    }
    for (const auto& [face, value] : map_flux) {
      ASSERT_TRUE(ws.has(static_cast<std::int32_t>(face)));
      ASSERT_EQ(ws.read(static_cast<std::int32_t>(face)), value);
    }
  }
}

TEST(DenseKernel, GrindLoopIsAllocationFree) {
  const mesh::StructuredMesh m({16, 16, 16}, {1, 1, 1});
  CellXs xs;
  const auto n = static_cast<std::size_t>(m.num_cells());
  xs.sigma_t.assign(n, 0.5);
  xs.sigma_s.assign(n, 0.2);
  xs.source.assign(n, 1.0);
  const StructuredDD disc(m, std::move(xs));
  const Ordinate ang{mesh::normalized({0.5, 0.6, 0.62}), 1.0, 0};
  const std::vector<double> q(n, 0.25);
  const std::vector<CellFaceSlots> slots = build_identity_slots(disc, ang);
  FaceFluxWorkspace ws;
  ws.prepare(m.num_cells() * 6);

  double sink = 0.0;
  for (int pass = 0; pass < 2; ++pass) {  // pass 0 warms everything up
    const std::int64_t a0 = support::allocation_count();
    ws.reset();
    for (std::int64_t c = 0; c < m.num_cells(); ++c)
      sink += disc.sweep_cell(
          CellId{c}, ang, q,
          FaceFluxView{&ws, &slots[static_cast<std::size_t>(c)]});
    const std::int64_t grind_allocs = support::allocation_count() - a0;
    if (pass == 1) {
      EXPECT_EQ(grind_allocs, 0)
          << "dense kernel grind must not allocate in steady state";
    }
  }
  EXPECT_NE(sink, -1.0);
}

}  // namespace
}  // namespace jsweep::sn

namespace jsweep::sweep {
namespace {

/// The pool must recycle workspaces under the real engine: fewer
/// workspaces than programs (the lazy borrow tracks the sweep frontier),
/// heavy reuse, and no growth after the first sweep (steady state).
TEST(FaceFluxPool, RecyclesWorkspacesUnderRealEngine) {
  const mesh::StructuredMesh m({12, 12, 12}, {1, 1, 1});
  sn::CellXs xs;
  const auto n = static_cast<std::size_t>(m.num_cells());
  xs.sigma_t.assign(n, 0.4);
  xs.sigma_s.assign(n, 0.1);
  xs.source.assign(n, 1.0);
  const sn::StructuredDD disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const std::vector<double> q(n, 0.5);
  const partition::StructuredBlockLayout layout({12, 12, 12}, {6, 6, 6});
  const partition::PatchSet ps(partition::block_partition(layout),
                               layout.num_patches());
  const int num_programs = layout.num_patches() * quad.num_angles();

  comm::Cluster::run(1, [&](comm::Context& ctx) {
    SolverConfig config;
    config.num_workers = 2;
    SweepSolver solver(ctx, m, ps, partition::assign_contiguous(
                                       layout.num_patches(), 1),
                       disc, quad, config);
    const auto phi1 = solver.sweep(q);
    const auto created_after_first = solver.flux_pool().created();
    EXPECT_GT(created_after_first, 0);
    EXPECT_LT(created_after_first, num_programs)
        << "lazy borrowing should keep live workspaces below the program "
           "count";
    const auto phi2 = solver.sweep(q);
    const auto phi3 = solver.sweep(q);
    // Steady state: later sweeps mostly reuse (scheduling may widen the
    // frontier slightly, so allow creations, not growth per program).
    const auto created = solver.flux_pool().created();
    EXPECT_LT(created, num_programs);
    EXPECT_GT(solver.flux_pool().reuses(),
              solver.flux_pool().acquires() / 2)
        << "three sweeps over the same programs should mostly recycle";
    // Exact pool invariant: every acquire either reused or created.
    EXPECT_EQ(solver.flux_pool().acquires(),
              solver.flux_pool().reuses() + created);
    // Recycling must not perturb results: sweeps of the same source are
    // identical, and match the serial reference bitwise.
    EXPECT_EQ(phi1, phi2);
    EXPECT_EQ(phi1, phi3);
    const auto serial = sn::serial_sweep(disc, quad, q);
    ASSERT_EQ(phi1.size(), serial.size());
    for (std::size_t c = 0; c < serial.size(); ++c)
      ASSERT_EQ(phi1[c], serial[c]) << "cell " << c;
  });
}

/// Same under the coarsened-graph replay path (workspace reuse across the
/// engine swap) and the BSP engine.
TEST(FaceFluxPool, RecyclesUnderCoarsenedAndBspEngines) {
  const mesh::StructuredMesh m({8, 8, 8}, {1, 1, 1});
  sn::CellXs xs;
  const auto n = static_cast<std::size_t>(m.num_cells());
  xs.sigma_t.assign(n, 0.6);
  xs.sigma_s.assign(n, 0.2);
  xs.source.assign(n, 1.0);
  const sn::StructuredDD disc(m, xs);
  const sn::Quadrature quad = sn::Quadrature::level_symmetric(2);
  const std::vector<double> q(n, 1.0);
  const partition::StructuredBlockLayout layout({8, 8, 8}, {4, 4, 4});
  const partition::PatchSet ps(partition::block_partition(layout),
                               layout.num_patches());
  const auto owner = partition::assign_contiguous(layout.num_patches(), 1);
  const auto serial = sn::serial_sweep(disc, quad, q);

  comm::Cluster::run(1, [&](comm::Context& ctx) {
    SolverConfig config;
    config.num_workers = 2;
    config.use_coarsened_graph = true;
    SweepSolver solver(ctx, m, ps, owner, disc, quad, config);
    const auto phi1 = solver.sweep(q);  // records + switches to coarsened
    const auto phi2 = solver.sweep(q);  // replays on the coarsened graph
    EXPECT_EQ(phi1, serial);
    EXPECT_EQ(phi2, serial);
    EXPECT_GT(solver.flux_pool().reuses(), 0);
  });

  comm::Cluster::run(1, [&](comm::Context& ctx) {
    SolverConfig config;
    config.num_workers = 2;
    config.engine = EngineKind::Bsp;
    SweepSolver solver(ctx, m, ps, owner, disc, quad, config);
    const auto phi1 = solver.sweep(q);
    const auto phi2 = solver.sweep(q);
    EXPECT_EQ(phi1, serial);
    EXPECT_EQ(phi2, serial);
    EXPECT_GT(solver.flux_pool().reuses(), 0);
  });
}

}  // namespace
}  // namespace jsweep::sweep
